open Refq_rdf

type error = {
  line : int;
  message : string;
}

let pp_error ppf e = Fmt.pf ppf "line %d: %s" e.line e.message

exception Parse_error of int * string

(* ------------------------------------------------------------------ *)
(* Lexing                                                              *)
(* ------------------------------------------------------------------ *)

type token =
  | Kw of string
      (** uppercase keyword: SELECT, WHERE, PREFIX, DISTINCT, UNION *)
  | Variable of string
  | Iriref of string
  | Pname of string
  | Bnode_label of string
  | A_keyword
  | String_lit of Term.t
  | Number_lit of Term.t
  | Star
  | Lbrace
  | Rbrace
  | Lparen
  | Rparen
  | Dot
  | Comma
  | Turnstile  (** [:-] of the paper notation *)
  | Word of string  (** bare name (paper-notation variable) *)
  | Eof

let pp_token ppf = function
  | Kw k -> Fmt.string ppf k
  | Variable v -> Fmt.pf ppf "?%s" v
  | Iriref u -> Fmt.pf ppf "<%s>" u
  | Pname n | Word n -> Fmt.string ppf n
  | Bnode_label l -> Fmt.pf ppf "_:%s" l
  | A_keyword -> Fmt.string ppf "a"
  | String_lit t | Number_lit t -> Term.pp ppf t
  | Star -> Fmt.string ppf "*"
  | Lbrace -> Fmt.string ppf "{"
  | Rbrace -> Fmt.string ppf "}"
  | Lparen -> Fmt.string ppf "("
  | Rparen -> Fmt.string ppf ")"
  | Dot -> Fmt.string ppf "."
  | Comma -> Fmt.string ppf ","
  | Turnstile -> Fmt.string ppf ":-"
  | Eof -> Fmt.string ppf "<eof>"

type lexer = {
  text : string;
  mutable pos : int;
  mutable line : int;
}

let fail lx fmt = Fmt.kstr (fun m -> raise (Parse_error (lx.line, m))) fmt

let peek lx = if lx.pos < String.length lx.text then Some lx.text.[lx.pos] else None

let peek2 lx =
  if lx.pos + 1 < String.length lx.text then Some lx.text.[lx.pos + 1] else None

let advance lx =
  (match peek lx with Some '\n' -> lx.line <- lx.line + 1 | Some _ | None -> ());
  lx.pos <- lx.pos + 1

let rec skip_ws lx =
  match peek lx with
  | Some (' ' | '\t' | '\r' | '\n') ->
    advance lx;
    skip_ws lx
  | Some '#' ->
    let rec to_eol () =
      match peek lx with
      | Some '\n' | None -> ()
      | Some _ ->
        advance lx;
        to_eol ()
    in
    to_eol ();
    skip_ws lx
  | Some _ | None -> ()

let is_digit c = c >= '0' && c <= '9'

let is_word_char c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || is_digit c || c = '_' || c = '-'

let lex_while lx pred =
  let start = lx.pos in
  let rec loop () =
    match peek lx with
    | Some c when pred c ->
      advance lx;
      loop ()
    | Some _ | None -> ()
  in
  loop ();
  String.sub lx.text start (lx.pos - start)

let lex_string lx =
  advance lx;
  let buf = Buffer.create 16 in
  let rec loop () =
    match peek lx with
    | Some '"' -> advance lx
    | Some '\\' -> (
      advance lx;
      match peek lx with
      | Some 'n' -> Buffer.add_char buf '\n'; advance lx; loop ()
      | Some 't' -> Buffer.add_char buf '\t'; advance lx; loop ()
      | Some '"' -> Buffer.add_char buf '"'; advance lx; loop ()
      | Some '\\' -> Buffer.add_char buf '\\'; advance lx; loop ()
      | Some c -> fail lx "unknown escape \\%C" c
      | None -> fail lx "unterminated escape")
    | Some c ->
      Buffer.add_char buf c;
      advance lx;
      loop ()
    | None -> fail lx "unterminated string literal"
  in
  loop ();
  let value = Buffer.contents buf in
  match peek lx with
  | Some '@' ->
    advance lx;
    let tag = lex_while lx is_word_char in
    String_lit (Term.lang_literal value tag)
  | Some '^' when peek2 lx = Some '^' ->
    advance lx;
    advance lx;
    (match peek lx with
    | Some '<' ->
      advance lx;
      let dt = lex_while lx (fun c -> c <> '>') in
      (match peek lx with
      | Some '>' -> advance lx
      | Some _ | None -> fail lx "unterminated datatype IRI");
      String_lit (Term.typed_literal value dt)
    | Some _ | None -> fail lx "expected datatype IRI after ^^")
  | Some _ | None -> String_lit (Term.literal value)

let lex_token lx =
  skip_ws lx;
  match peek lx with
  | None -> Eof
  | Some '_' when peek2 lx = Some ':' ->
    advance lx;
    advance lx;
    let label = lex_while lx is_word_char in
    if label = "" then fail lx "empty blank node label";
    Bnode_label label
  | Some '?' | Some '$' ->
    advance lx;
    let name = lex_while lx is_word_char in
    if name = "" then fail lx "empty variable name";
    Variable name
  | Some '<' ->
    advance lx;
    let u = lex_while lx (fun c -> c <> '>' && c <> '\n') in
    (match peek lx with
    | Some '>' -> advance lx
    | Some _ | None -> fail lx "unterminated IRI");
    Iriref u
  | Some '"' -> lex_string lx
  | Some '{' -> advance lx; Lbrace
  | Some '}' -> advance lx; Rbrace
  | Some '(' -> advance lx; Lparen
  | Some ')' -> advance lx; Rparen
  | Some '.' -> advance lx; Dot
  | Some ',' -> advance lx; Comma
  | Some '*' -> advance lx; Star
  | Some ':' when peek2 lx = Some '-' ->
    advance lx;
    advance lx;
    Turnstile
  | Some c when is_digit c || c = '+' || c = '-' ->
    let body = lex_while lx (fun c -> is_digit c || c = '.' || c = '+' || c = '-') in
    if String.contains body '.' then
      Number_lit (Term.typed_literal body Vocab.xsd_decimal)
    else Number_lit (Term.typed_literal body Vocab.xsd_integer)
  | Some c when is_word_char c || c = ':' -> (
    let word = lex_while lx (fun ch -> is_word_char ch || ch = ':' || ch = '.') in
    (* A trailing '.' belongs to the pattern separator, not the name. *)
    let word =
      if String.length word > 0 && word.[String.length word - 1] = '.' then begin
        lx.pos <- lx.pos - 1;
        String.sub word 0 (String.length word - 1)
      end
      else word
    in
    match String.uppercase_ascii word with
    | "SELECT" | "WHERE" | "PREFIX" | "DISTINCT" | "UNION" | "ASK" ->
      Kw (String.uppercase_ascii word)
    | _ ->
      if word = "a" then A_keyword
      else if String.contains word ':' then Pname word
      else Word word)
  | Some c -> fail lx "unexpected character %C" c

(* ------------------------------------------------------------------ *)
(* Parsing                                                             *)
(* ------------------------------------------------------------------ *)

type state = {
  lx : lexer;
  mutable tok : token;
  mutable env : Namespace.t;
}

let next st = st.tok <- lex_token st.lx

let sfail st fmt = Fmt.kstr (fun m -> raise (Parse_error (st.lx.line, m))) fmt

let resolve st name =
  match Namespace.expand st.env name with
  | Ok u -> u
  | Error msg -> sfail st "%s" msg

let check_var st v =
  if Cq.is_fresh_var v then
    sfail st "variable name %S uses the reserved fresh-variable prefix" v;
  v

let parse_prologue st =
  let rec loop () =
    match st.tok with
    | Kw "PREFIX" -> (
      next st;
      match st.tok with
      | Pname n when String.length n > 0 && n.[String.length n - 1] = ':' ->
        let prefix = String.sub n 0 (String.length n - 1) in
        next st;
        (match st.tok with
        | Iriref uri ->
          next st;
          st.env <- Namespace.add st.env ~prefix ~uri;
          loop ()
        | tok -> sfail st "expected namespace IRI, found %a" pp_token tok)
      | tok -> sfail st "expected prefix declaration, found %a" pp_token tok)
    | _ -> ()
  in
  loop ()

let parse_pattern_term st =
  match st.tok with
  | Variable v ->
    next st;
    Cq.var (check_var st v)
  | Bnode_label l ->
    (* A blank node in a pattern is an existential: a variable that can
       never be selected (the [_b:] prefix is not a valid SPARQL name). *)
    next st;
    Cq.var ("_b:" ^ l)
  | Iriref u ->
    next st;
    Cq.cst (Term.uri u)
  | Pname n ->
    next st;
    Cq.cst (Term.uri (resolve st n))
  | A_keyword ->
    next st;
    Cq.cst Vocab.rdf_type
  | String_lit t | Number_lit t ->
    next st;
    Cq.cst t
  | tok -> sfail st "expected term, found %a" pp_token tok

let parse_bgp st =
  let atoms = ref [] in
  let rec loop () =
    match st.tok with
    | Rbrace -> ()
    | _ ->
      let s = parse_pattern_term st in
      let p = parse_pattern_term st in
      let o = parse_pattern_term st in
      atoms := Cq.atom s p o :: !atoms;
      (match st.tok with
      | Dot ->
        next st;
        loop ()
      | Rbrace -> ()
      | tok -> sfail st "expected '.' or '}', found %a" pp_token tok)
  in
  loop ();
  List.rev !atoms

let parse ?(env = Namespace.default) text =
  let lx = { text; pos = 0; line = 1 } in
  match
    let st = { lx; tok = Eof; env } in
    st.tok <- lex_token lx;
    parse_prologue st;
    (match st.tok with
    | Kw "SELECT" -> next st
    | tok -> sfail st "expected SELECT, found %a" pp_token tok);
    (match st.tok with Kw "DISTINCT" -> next st | _ -> ());
    let star, vars =
      match st.tok with
      | Star ->
        next st;
        (true, [])
      | Variable _ ->
        let rec loop acc =
          match st.tok with
          | Variable v ->
            next st;
            loop (check_var st v :: acc)
          | _ -> List.rev acc
        in
        (false, loop [])
      | tok -> sfail st "expected projection, found %a" pp_token tok
    in
    (match st.tok with
    | Kw "WHERE" -> next st
    | _ -> () (* WHERE is optional in SPARQL *));
    (match st.tok with
    | Lbrace -> next st
    | tok -> sfail st "expected '{', found %a" pp_token tok);
    let body = parse_bgp st in
    (match st.tok with
    | Rbrace -> next st
    | tok -> sfail st "expected '}', found %a" pp_token tok);
    (match st.tok with
    | Eof -> ()
    | tok -> sfail st "trailing content: %a" pp_token tok);
    if body = [] then sfail st "empty basic graph pattern";
    let head_vars =
      if star then Cq.body_vars { Cq.head = []; body }
      else vars
    in
    Cq.make ~head:(List.map Cq.var head_vars) ~body
  with
  | q -> Ok q
  | exception Parse_error (line, message) -> Error { line; message }
  | exception Invalid_argument message -> Error { line = 1; message }

(* SELECT over a union of BGP blocks:
   WHERE { { bgp } UNION { bgp } UNION ... } or WHERE { bgp }. *)
let parse_select ?(env = Namespace.default) text =
  let lx = { text; pos = 0; line = 1 } in
  match
    let st = { lx; tok = Eof; env } in
    st.tok <- lex_token lx;
    parse_prologue st;
    (match st.tok with
    | Kw "SELECT" -> next st
    | tok -> sfail st "expected SELECT, found %a" pp_token tok);
    (match st.tok with Kw "DISTINCT" -> next st | _ -> ());
    let star, vars =
      match st.tok with
      | Star ->
        next st;
        (true, [])
      | Variable _ ->
        let rec loop acc =
          match st.tok with
          | Variable v ->
            next st;
            loop (check_var st v :: acc)
          | _ -> List.rev acc
        in
        (false, loop [])
      | tok -> sfail st "expected projection, found %a" pp_token tok
    in
    (match st.tok with Kw "WHERE" -> next st | _ -> ());
    (match st.tok with
    | Lbrace -> next st
    | tok -> sfail st "expected '{', found %a" pp_token tok);
    let branches =
      match st.tok with
      | Lbrace ->
        (* Braced blocks joined by UNION. *)
        let block () =
          (match st.tok with
          | Lbrace -> next st
          | tok -> sfail st "expected '{', found %a" pp_token tok);
          let body = parse_bgp st in
          (match st.tok with
          | Rbrace -> next st
          | tok -> sfail st "expected '}', found %a" pp_token tok);
          body
        in
        let rec loop acc =
          let acc = block () :: acc in
          match st.tok with
          | Kw "UNION" ->
            next st;
            loop acc
          | _ -> List.rev acc
        in
        loop []
      | _ -> [ parse_bgp st ]
    in
    (match st.tok with
    | Rbrace -> next st
    | tok -> sfail st "expected '}', found %a" pp_token tok);
    (match st.tok with
    | Eof -> ()
    | tok -> sfail st "trailing content: %a" pp_token tok);
    if List.exists (fun b -> b = []) branches then
      sfail st "empty basic graph pattern";
    if star && List.length branches > 1 then
      sfail st "SELECT * is ambiguous over UNION; name the variables";
    let disjuncts =
      List.map
        (fun body ->
          let head_vars =
            if star then
              List.filter
                (fun v -> not (String.length v > 2 && String.sub v 0 3 = "_b:"))
                (Cq.body_vars { Cq.head = []; body })
            else vars
          in
          Cq.make ~head:(List.map Cq.var head_vars) ~body)
        branches
    in
    Ucq.of_disjuncts disjuncts
  with
  | u -> Ok u
  | exception Parse_error (line, message) -> Error { line; message }
  | exception Invalid_argument message -> Error { line = 1; message }

(* ASK { bgp }: a boolean query (empty head). *)
let parse_ask ?(env = Namespace.default) text =
  let lx = { text; pos = 0; line = 1 } in
  match
    let st = { lx; tok = Eof; env } in
    st.tok <- lex_token lx;
    parse_prologue st;
    (match st.tok with
    | Kw "ASK" -> next st
    | tok -> sfail st "expected ASK, found %a" pp_token tok);
    (match st.tok with Kw "WHERE" -> next st | _ -> ());
    (match st.tok with
    | Lbrace -> next st
    | tok -> sfail st "expected '{', found %a" pp_token tok);
    let body = parse_bgp st in
    (match st.tok with
    | Rbrace -> next st
    | tok -> sfail st "expected '}', found %a" pp_token tok);
    (match st.tok with
    | Eof -> ()
    | tok -> sfail st "trailing content: %a" pp_token tok);
    if body = [] then sfail st "empty basic graph pattern";
    Cq.make ~head:[] ~body
  with
  | q -> Ok q
  | exception Parse_error (line, message) -> Error { line; message }
  | exception Invalid_argument message -> Error { line = 1; message }

let parse_notation ?(env = Namespace.default) text =
  let lx = { text; pos = 0; line = 1 } in
  match
    let st = { lx; tok = Eof; env } in
    st.tok <- lex_token lx;
    (* Head: name(v1, ..., vn) *)
    (match st.tok with
    | Word _ -> next st
    | tok -> sfail st "expected query name, found %a" pp_token tok);
    (match st.tok with
    | Lparen -> next st
    | tok -> sfail st "expected '(', found %a" pp_token tok);
    let rec head_loop acc =
      match st.tok with
      | Rparen ->
        next st;
        List.rev acc
      | Word v ->
        next st;
        (match st.tok with Comma -> next st | _ -> ());
        head_loop (check_var st v :: acc)
      | Variable v ->
        next st;
        (match st.tok with Comma -> next st | _ -> ());
        head_loop (check_var st v :: acc)
      | tok -> sfail st "expected head variable, found %a" pp_token tok
    in
    let head = head_loop [] in
    (match st.tok with
    | Turnstile -> next st
    | tok -> sfail st "expected ':-', found %a" pp_token tok);
    let term () =
      match st.tok with
      | Word v ->
        next st;
        Cq.var (check_var st v)
      | Variable v ->
        next st;
        Cq.var (check_var st v)
      | Iriref u ->
        next st;
        Cq.cst (Term.uri u)
      | Pname n ->
        next st;
        Cq.cst (Term.uri (resolve st n))
      | A_keyword ->
        next st;
        Cq.cst Vocab.rdf_type
      | String_lit t | Number_lit t ->
        next st;
        Cq.cst t
      | tok -> sfail st "expected term, found %a" pp_token tok
    in
    let rec body_loop acc =
      let s = term () in
      let p = term () in
      let o = term () in
      let acc = Cq.atom s p o :: acc in
      match st.tok with
      | Comma ->
        next st;
        body_loop acc
      | Eof -> List.rev acc
      | tok -> sfail st "expected ',' or end, found %a" pp_token tok
    in
    let body = body_loop [] in
    Cq.make ~head:(List.map Cq.var head) ~body
  with
  | q -> Ok q
  | exception Parse_error (line, message) -> Error { line; message }
  | exception Invalid_argument message -> Error { line = 1; message }

(* ------------------------------------------------------------------ *)
(* Printing                                                            *)
(* ------------------------------------------------------------------ *)

let pp_sparql_term env ppf = function
  | Cq.Var v -> Fmt.pf ppf "?%s" v
  | Cq.Cst t ->
    if Term.equal t Vocab.rdf_type then Fmt.string ppf "a"
    else Namespace.pp_term env ppf t

let pp_bgp env ppf body =
  List.iter
    (fun a ->
      Fmt.pf ppf "  %a %a %a .@," (pp_sparql_term env) a.Cq.s
        (pp_sparql_term env) a.Cq.p (pp_sparql_term env) a.Cq.o)
    body

let prologue env used =
  (* Emit only the prefixes actually usable for the query's URIs. *)
  let needed = Hashtbl.create 8 in
  List.iter
    (function
      | Cq.Cst (Term.Uri u) -> (
        match Namespace.abbreviate env u with
        | Some short -> (
          match String.index_opt short ':' with
          | Some i -> Hashtbl.replace needed (String.sub short 0 i) ()
          | None -> ())
        | None -> ())
      | Cq.Cst _ | Cq.Var _ -> ())
    used;
  Namespace.fold
    (fun prefix ns acc ->
      if Hashtbl.mem needed prefix then
        Printf.sprintf "PREFIX %s: <%s>\n" prefix ns :: acc
      else acc)
    env []
  |> String.concat ""

let cq_terms q =
  List.concat_map (fun a -> [ a.Cq.s; a.Cq.p; a.Cq.o ]) q.Cq.body @ q.Cq.head

let to_sparql ?(env = Namespace.default) q =
  let head =
    match q.Cq.head with
    | [] -> "*"
    | head ->
      String.concat " "
        (List.map
           (function
             | Cq.Var v -> "?" ^ v
             | Cq.Cst t -> Fmt.str "%a" Term.pp t)
           head)
  in
  prologue env (cq_terms q)
  ^ Fmt.str "SELECT %s WHERE {@[<v>@,%a@]}" head (pp_bgp env) q.Cq.body

let ucq_to_sparql ?(env = Namespace.default) u =
  let disjuncts = Ucq.disjuncts u in
  let all_terms = List.concat_map cq_terms disjuncts in
  (* Head variables: positional names ?c0, ?c1, ... so that disjuncts with
     different variable names align. *)
  let arity = Ucq.arity u in
  let head_names = List.init arity (fun i -> Printf.sprintf "c%d" i) in
  let block q =
    (* Rename each head variable of the disjunct to its positional name;
       constants get a VALUES clause. *)
    let renaming, values =
      List.fold_left2
        (fun (ren, vals) pat name ->
          match pat with
          | Cq.Var v -> ((v, name) :: ren, vals)
          | Cq.Cst t -> (ren, (name, t) :: vals))
        ([], []) q.Cq.head head_names
    in
    let rename_pat = function
      | Cq.Var v as pat -> (
        match List.assoc_opt v renaming with
        | Some n -> Cq.Var n
        | None -> pat)
      | Cq.Cst _ as pat -> pat
    in
    let body =
      List.map
        (fun a ->
          Cq.atom (rename_pat a.Cq.s) (rename_pat a.Cq.p) (rename_pat a.Cq.o))
        q.Cq.body
    in
    let values_clauses =
      String.concat ""
        (List.map
           (fun (name, t) ->
             Fmt.str "  VALUES ?%s { %a }\n" name (Namespace.pp_term env) t)
           values)
    in
    Fmt.str "{@[<v>@,%a@]%s}" (pp_bgp env) body values_clauses
  in
  prologue env all_terms
  ^ Printf.sprintf "SELECT %s WHERE {\n%s\n}"
      (String.concat " " (List.map (fun n -> "?" ^ n) head_names))
      (String.concat "\nUNION\n" (List.map block disjuncts))
