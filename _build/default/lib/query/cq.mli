(** Conjunctive queries (basic graph pattern queries).

    A CQ [q(x̄) :- t1, ..., tα] is a basic graph pattern [{t1, ..., tα}]
    (each [ti] a triple pattern whose subject, property and object may be
    variables) together with distinguished (head) variables [x̄ ⊆ vars(body)].

    After reformulation, head positions may also hold constants (a rewriting
    can bind a distinguished variable to a schema constant), so heads are
    lists of {e patterns} rather than variables. *)

open Refq_rdf

type pat =
  | Var of string
  | Cst of Term.t

type atom = {
  s : pat;
  p : pat;
  o : pat;
}

type t = {
  head : pat list;
  body : atom list;
}

val var : string -> pat

val cst : Term.t -> pat

val atom : pat -> pat -> pat -> atom

val make : head:pat list -> body:atom list -> t
(** @raise Invalid_argument if the query is not safe (a head variable does
    not occur in the body). An empty body is allowed only with an
    all-constant head: reformulation produces such tautological disjuncts
    when a query atom over a schema property is entailed by the schema
    itself (see [Refq_reform.Atom_reform]). *)

val pat_equal : pat -> pat -> bool

val atom_equal : atom -> atom -> bool

val compare : t -> t -> int

val equal : t -> t -> bool

val atom_vars : atom -> string list
(** Variables of an atom, in subject-property-object order, without
    duplicates. *)

val body_vars : t -> string list
(** Variables of the body, first-occurrence order, without duplicates. *)

val head_vars : t -> string list

val arity : t -> int

val is_boolean : t -> bool

val fresh_var_prefix : string
(** Prefix reserved for existential variables introduced by reformulation
    (rules R2/R3/R6/R7); never accepted from parsers. *)

val is_fresh_var : string -> bool

(** {1 Substitutions}

    Reformulation-produced substitutions bind variables to {e constants}
    (schema classes and properties); they never bind variables to
    variables. *)

module Subst : sig
  type cq := t

  type t

  val empty : t

  val is_empty : t -> bool

  val singleton : string -> Term.t -> t

  val bind : string -> Term.t -> t -> t option
  (** [None] when the variable is already bound to a different constant. *)

  val find : string -> t -> Term.t option

  val merge : t -> t -> t option
  (** Union of the bindings; [None] on conflict. *)

  val apply_pat : t -> pat -> pat

  val apply_atom : t -> atom -> atom

  val apply : t -> cq -> cq

  val bindings : t -> (string * Term.t) list

  val pp : t Fmt.t
end

val canonicalize : t -> t
(** Rename body variables to a canonical sequence (head first, then
    first-occurrence order) so that structurally identical CQs become
    syntactically equal; used to deduplicate UCQ disjuncts. *)

val pp : t Fmt.t
(** Paper notation: [q(x, y) :- s p o, ...]. *)

val pp_atom : atom Fmt.t

val pp_pat : pat Fmt.t
