open Refq_rdf
open Refq_query
open Refq_storage

let v name = Datalog.Var name

let rdfs_rules store =
  let c term = Datalog.Cst (Store.encode_term store term) in
  let ty = c Vocab.rdf_type in
  let sc = c Vocab.rdfs_subclassof in
  let sp = c Vocab.rdfs_subpropertyof in
  let dom = c Vocab.rdfs_domain in
  let rng = c Vocab.rdfs_range in
  let sat args = Datalog.atom "sat" args in
  [
    (* Every explicit triple is entailed. *)
    Datalog.rule (sat [ v "s"; v "p"; v "o" ])
      [ Datalog.atom "triple" [ v "s"; v "p"; v "o" ] ];
    (* rdfs9: subclass propagation on class assertions *)
    Datalog.rule (sat [ v "s"; ty; v "c2" ])
      [ sat [ v "s"; ty; v "c1" ]; sat [ v "c1"; sc; v "c2" ] ];
    (* rdfs7: subproperty propagation on assertions *)
    Datalog.rule (sat [ v "s"; v "p2"; v "o" ])
      [ sat [ v "s"; v "p1"; v "o" ]; sat [ v "p1"; sp; v "p2" ] ];
    (* rdfs2 / rdfs3: domain and range typing *)
    Datalog.rule (sat [ v "s"; ty; v "c" ])
      [ sat [ v "s"; v "p"; v "o" ]; sat [ v "p"; dom; v "c" ] ];
    Datalog.rule (sat [ v "o"; ty; v "c" ])
      [ sat [ v "s"; v "p"; v "o" ]; sat [ v "p"; rng; v "c" ] ];
    (* rdfs11 / rdfs5: transitivity of the hierarchies *)
    Datalog.rule (sat [ v "c1"; sc; v "c3" ])
      [ sat [ v "c1"; sc; v "c2" ]; sat [ v "c2"; sc; v "c3" ] ];
    Datalog.rule (sat [ v "p1"; sp; v "p3" ])
      [ sat [ v "p1"; sp; v "p2" ]; sat [ v "p2"; sp; v "p3" ] ];
    (* ext: domain/range inheritance along subproperties *)
    Datalog.rule (sat [ v "p1"; dom; v "c" ])
      [ sat [ v "p1"; sp; v "p2" ]; sat [ v "p2"; dom; v "c" ] ];
    Datalog.rule (sat [ v "p1"; rng; v "c" ])
      [ sat [ v "p1"; sp; v "p2" ]; sat [ v "p2"; rng; v "c" ] ];
    (* ext: domain/range propagation along subclasses *)
    Datalog.rule (sat [ v "p"; dom; v "c2" ])
      [ sat [ v "p"; dom; v "c1" ]; sat [ v "c1"; sc; v "c2" ] ];
    Datalog.rule (sat [ v "p"; rng; v "c2" ])
      [ sat [ v "p"; rng; v "c1" ]; sat [ v "c1"; sc; v "c2" ] ];
  ]

exception Absent

let query_rule store q =
  let pat_term = function
    | Cq.Var x -> Datalog.Var x
    | Cq.Cst t -> (
      match Store.find_term store t with
      | Some id -> Datalog.Cst id
      | None -> raise Absent)
  in
  match
    let body =
      List.map
        (fun a ->
          Datalog.atom "sat" [ pat_term a.Cq.s; pat_term a.Cq.p; pat_term a.Cq.o ])
        q.Cq.body
    in
    let head =
      Datalog.atom "ans"
        (List.map
           (function
             | Cq.Var x -> Datalog.Var x
             | Cq.Cst t -> Datalog.Cst (Store.encode_term store t))
           q.Cq.head)
    in
    (* An empty body (possible on reformulation tautologies, not on user
       queries) cannot be expressed as a Datalog rule; reject it here. *)
    if body = [] then invalid_arg "Rdf_encoding.query_rule: empty body";
    Datalog.rule head body
  with
  | r -> Some r
  | exception Absent -> None

let answer store q =
  let db = Datalog.Db.create () in
  Store.iter_all store (fun s p o -> Datalog.Db.add_fact db "triple" [| s; p; o |]);
  let rules = rdfs_rules store in
  let cols =
    Array.of_list (List.mapi (fun i _ -> Printf.sprintf "c%d" i) q.Cq.head)
  in
  match query_rule store q with
  | None ->
    (Refq_engine.Relation.create ~cols, { Datalog.iterations = 0; derived = 0 })
  | Some qr ->
    let stats = Datalog.eval (rules @ [ qr ]) db in
    let rel = Refq_engine.Relation.create ~cols in
    let seen = Hashtbl.create 64 in
    List.iter
      (fun tuple ->
        if not (Hashtbl.mem seen tuple) then begin
          Hashtbl.add seen tuple ();
          Refq_engine.Relation.add_row rel tuple
        end)
      (Datalog.Db.tuples db "ans");
    (rel, stats)
