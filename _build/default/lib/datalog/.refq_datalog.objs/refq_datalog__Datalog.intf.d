lib/datalog/datalog.mli: Fmt
