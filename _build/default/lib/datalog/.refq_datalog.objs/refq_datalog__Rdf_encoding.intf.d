lib/datalog/rdf_encoding.mli: Cq Datalog Refq_engine Refq_query Refq_storage Store
