lib/datalog/datalog.ml: Array Fmt Hashtbl List Option Printf
