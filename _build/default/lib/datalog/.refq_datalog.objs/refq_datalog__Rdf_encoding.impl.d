lib/datalog/rdf_encoding.ml: Array Cq Datalog Hashtbl List Printf Refq_engine Refq_query Refq_rdf Refq_storage Store Vocab
