type term =
  | Var of string
  | Cst of int

type atom = {
  pred : string;
  args : term list;
}

type rule = {
  head : atom;
  body : atom list;
}

let atom pred args = { pred; args }

let rule head body =
  if body = [] then invalid_arg "Datalog.rule: empty body";
  let body_vars =
    List.concat_map
      (fun a -> List.filter_map (function Var v -> Some v | Cst _ -> None) a.args)
      body
  in
  List.iter
    (function
      | Var v when not (List.mem v body_vars) ->
        invalid_arg (Printf.sprintf "Datalog.rule: unsafe head variable %S" v)
      | Var _ | Cst _ -> ())
    head.args;
  { head; body }

let pp_term ppf = function
  | Var v -> Fmt.pf ppf "?%s" v
  | Cst c -> Fmt.int ppf c

let pp_atom ppf a =
  Fmt.pf ppf "%s(%a)" a.pred (Fmt.list ~sep:Fmt.comma pp_term) a.args

let pp_rule ppf r =
  Fmt.pf ppf "%a :- %a" pp_atom r.head (Fmt.list ~sep:Fmt.comma pp_atom) r.body

(* ------------------------------------------------------------------ *)
(* Database                                                            *)
(* ------------------------------------------------------------------ *)

module Db = struct
  type pred_data = {
    mutable all : int array list;
    seen : (int array, unit) Hashtbl.t;
    by_pos : (int * int, int array list ref) Hashtbl.t;
        (** (argument position, value) → matching tuples *)
  }

  type t = (string, pred_data) Hashtbl.t

  let create () : t = Hashtbl.create 16

  let pred_data db pred =
    match Hashtbl.find_opt db pred with
    | Some pd -> pd
    | None ->
      let pd = { all = []; seen = Hashtbl.create 64; by_pos = Hashtbl.create 64 } in
      Hashtbl.add db pred pd;
      pd

  let mem db pred tuple =
    match Hashtbl.find_opt db pred with
    | None -> false
    | Some pd -> Hashtbl.mem pd.seen tuple

  let add_fact db pred tuple =
    let pd = pred_data db pred in
    if not (Hashtbl.mem pd.seen tuple) then begin
      Hashtbl.add pd.seen tuple ();
      pd.all <- tuple :: pd.all;
      Array.iteri
        (fun pos v ->
          match Hashtbl.find_opt pd.by_pos (pos, v) with
          | Some l -> l := tuple :: !l
          | None -> Hashtbl.add pd.by_pos (pos, v) (ref [ tuple ]))
        tuple
    end

  let tuples db pred =
    match Hashtbl.find_opt db pred with None -> [] | Some pd -> pd.all

  let cardinality db pred =
    match Hashtbl.find_opt db pred with
    | None -> 0
    | Some pd -> Hashtbl.length pd.seen

  (* Tuples matching a set of (position, value) constraints: scan the
     smallest single-position bucket and filter by the rest. *)
  let select db pred constraints =
    match Hashtbl.find_opt db pred with
    | None -> []
    | Some pd -> (
      match constraints with
      | [] -> pd.all
      | _ ->
        let bucket_of (pos, v) =
          match Hashtbl.find_opt pd.by_pos (pos, v) with
          | Some l -> !l
          | None -> []
        in
        let best =
          List.fold_left
            (fun acc c ->
              let b = bucket_of c in
              match acc with
              | Some (_, len) when len <= List.length b -> acc
              | _ -> Some (b, List.length b))
            None constraints
        in
        let bucket = match best with Some (b, _) -> b | None -> [] in
        List.filter
          (fun t -> List.for_all (fun (pos, v) -> t.(pos) = v) constraints)
          bucket)
end

(* ------------------------------------------------------------------ *)
(* Semi-naive evaluation                                               *)
(* ------------------------------------------------------------------ *)

type stats = {
  iterations : int;
  derived : int;
}

(* Compiled rule: variables mapped to slots of an environment array. *)
type carg =
  | Cslot of int
  | Cconst of int

type catom = {
  cpred : string;
  cargs : carg array;
}

let compile_rule r =
  let slots = Hashtbl.create 8 in
  let slot_of v =
    match Hashtbl.find_opt slots v with
    | Some i -> i
    | None ->
      let i = Hashtbl.length slots in
      Hashtbl.add slots v i;
      i
  in
  let compile_atom a =
    {
      cpred = a.pred;
      cargs =
        Array.of_list
          (List.map
             (function Var v -> Cslot (slot_of v) | Cst c -> Cconst c)
             a.args);
    }
  in
  let body = List.map compile_atom r.body in
  let head = compile_atom r.head in
  (head, Array.of_list body, Hashtbl.length slots)

let eval rules db =
  let compiled = List.map compile_rule rules in
  (* Initial delta: everything currently in the database. *)
  let delta : (string, int array list) Hashtbl.t = Hashtbl.create 16 in
  Hashtbl.iter
    (fun pred (pd : Db.pred_data) -> Hashtbl.replace delta pred pd.Db.all)
    db;
  let derived = ref 0 in
  let iterations = ref 0 in
  let next_delta : (string, int array list) Hashtbl.t = Hashtbl.create 16 in
  let emit pred tuple =
    if not (Db.mem db pred tuple) then begin
      Db.add_fact db pred tuple;
      incr derived;
      let prev = Option.value ~default:[] (Hashtbl.find_opt next_delta pred) in
      Hashtbl.replace next_delta pred (tuple :: prev)
    end
  in
  let delta_tuples pred =
    Option.value ~default:[] (Hashtbl.find_opt delta pred)
  in
  (* Evaluate one rule with body atom [pin] ranging over the delta. *)
  let eval_rule (head, body, nslots) pin =
    let env = Array.make (max nslots 1) 0 in
    let bound = Array.make (max nslots 1) false in
    let rec solve j =
      if j = Array.length body then begin
        let tuple =
          Array.map
            (function Cslot i -> env.(i) | Cconst c -> c)
            head.cargs
        in
        emit head.cpred tuple
      end
      else begin
        let a = body.(j) in
        let constraints = ref [] in
        Array.iteri
          (fun pos arg ->
            match arg with
            | Cconst c -> constraints := (pos, c) :: !constraints
            | Cslot i -> if bound.(i) then constraints := (pos, env.(i)) :: !constraints)
          a.cargs;
        let candidates =
          if j = pin then
            (* The delta side is filtered, not indexed. *)
            List.filter
              (fun t -> List.for_all (fun (pos, v) -> t.(pos) = v) !constraints)
              (delta_tuples a.cpred)
          else Db.select db a.cpred !constraints
        in
        List.iter
          (fun t ->
            if Array.length t = Array.length a.cargs then begin
              let newly = ref [] in
              let ok = ref true in
              Array.iteri
                (fun pos arg ->
                  if !ok then
                    match arg with
                    | Cconst c -> if t.(pos) <> c then ok := false
                    | Cslot i ->
                      if bound.(i) then begin
                        if env.(i) <> t.(pos) then ok := false
                      end
                      else begin
                        env.(i) <- t.(pos);
                        bound.(i) <- true;
                        newly := i :: !newly
                      end)
                a.cargs;
              if !ok then solve (j + 1);
              List.iter (fun i -> bound.(i) <- false) !newly
            end)
          candidates
      end
    in
    solve 0
  in
  let rec loop () =
    incr iterations;
    Hashtbl.reset next_delta;
    List.iter
      (fun ((_, body, _) as cr) ->
        for pin = 0 to Array.length body - 1 do
          eval_rule cr pin
        done)
      compiled;
    if Hashtbl.length next_delta > 0 then begin
      Hashtbl.reset delta;
      Hashtbl.iter (fun k v -> Hashtbl.replace delta k v) next_delta;
      loop ()
    end
  in
  loop ();
  { iterations = !iterations; derived = !derived }
