(** The [Dat] query answering technique: encoding RDF data, constraints and
    queries into Datalog programs (the demonstration's LogicBlox stand-in).

    The encoding uses a single ternary EDB predicate [triple(s,p,o)], an
    IDB predicate [sat(s,p,o)] axiomatized with the RDFS entailment rules
    of the DB fragment, and one rule per query mapping the query's triple
    patterns onto [sat]. Bottom-up evaluation then computes exactly
    [q(G∞)]. *)

open Refq_query
open Refq_storage

val rdfs_rules : Store.t -> Datalog.rule list
(** The RDFS program over [triple]/[sat] (rdfs2/3/5/7/9/11 plus domain and
    range inheritance/propagation), with RDFS vocabulary constants encoded
    through the store's dictionary. *)

val query_rule : Store.t -> Cq.t -> Datalog.rule option
(** The [ans(x̄) :- sat(...), ...] rule for a CQ. [None] when a query
    constant is absent from the store's dictionary (the answer is then
    necessarily empty). Head constants are encoded (allocating ids). *)

val answer : Store.t -> Cq.t -> Refq_engine.Relation.t * Datalog.stats
(** Answer a CQ by the full Dat pipeline: load [triple], run the program,
    read [ans]. The relation's columns are positional ([c0], [c1], ...). *)
