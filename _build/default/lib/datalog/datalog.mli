(** A positive Datalog engine with semi-naive bottom-up evaluation.

    This is the stand-in for the LogicBlox engine used by the paper's [Dat]
    query answering technique: RDF data, constraints and the query are
    encoded into a Datalog program ({!Rdf_encoding}) and evaluated
    bottom-up. Constants are plain integers (the caller typically passes
    dictionary ids). *)

type term =
  | Var of string
  | Cst of int

type atom = {
  pred : string;
  args : term list;
}

type rule = {
  head : atom;
  body : atom list;  (** non-empty; pure positive conjunction *)
}

val atom : string -> term list -> atom

val rule : atom -> atom list -> rule
(** @raise Invalid_argument if the rule is unsafe (a head variable missing
    from the body) or the body is empty. *)

val pp_atom : atom Fmt.t

val pp_rule : rule Fmt.t

(** Extensional + intensional database under evaluation. *)
module Db : sig
  type t

  val create : unit -> t

  val add_fact : t -> string -> int array -> unit
  (** Insert a tuple into a predicate (deduplicated). *)

  val tuples : t -> string -> int array list
  (** Current tuples of a predicate (empty list when absent). *)

  val cardinality : t -> string -> int
end

type stats = {
  iterations : int;  (** semi-naive rounds until fixpoint *)
  derived : int;  (** facts derived (beyond the EDB) *)
}

val eval : rule list -> Db.t -> stats
(** Run semi-naive evaluation of the rules over the database, in place,
    until fixpoint. *)
