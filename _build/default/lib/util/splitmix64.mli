(** Deterministic pseudo-random number generation (SplitMix64).

    The workload generators must produce *identical* datasets across runs and
    OCaml releases — [Stdlib.Random]'s stream is not guaranteed stable across
    compiler versions, so we carry our own small, well-known generator. *)

type t

val create : int64 -> t
(** [create seed] is a fresh generator. Equal seeds give equal streams. *)

val copy : t -> t

val next : t -> int64
(** Next raw 64-bit value. *)

val int : t -> int -> int
(** [int g bound] is uniform in [\[0, bound)]. @raise Invalid_argument if
    [bound <= 0]. *)

val int_in : t -> int -> int -> int
(** [int_in g lo hi] is uniform in [\[lo, hi\]] (inclusive). *)

val float : t -> float -> float
(** [float g bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool

val pick : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val split : t -> t
(** [split g] derives an independent generator (and advances [g]). *)
