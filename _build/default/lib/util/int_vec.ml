type t = {
  mutable data : int array;
  mutable len : int;
}

let create ?(capacity = 16) () = { data = Array.make (max 1 capacity) 0; len = 0 }

let length v = v.len

let check v i = if i < 0 || i >= v.len then invalid_arg "Int_vec: index out of bounds"

let get v i =
  check v i;
  Array.unsafe_get v.data i

let set v i x =
  check v i;
  Array.unsafe_set v.data i x

let ensure v extra =
  let needed = v.len + extra in
  if needed > Array.length v.data then begin
    let cap = ref (Array.length v.data) in
    while !cap < needed do
      cap := 2 * !cap
    done;
    let data = Array.make !cap 0 in
    Array.blit v.data 0 data 0 v.len;
    v.data <- data
  end

let push v x =
  ensure v 1;
  Array.unsafe_set v.data v.len x;
  v.len <- v.len + 1

let append_array v a =
  let n = Array.length a in
  ensure v n;
  Array.blit a 0 v.data v.len n;
  v.len <- v.len + n

let blit_to v src dst dst_pos len =
  if src < 0 || len < 0 || src + len > v.len then invalid_arg "Int_vec.blit_to";
  Array.blit v.data src dst dst_pos len

let clear v = v.len <- 0

let iter f v =
  for i = 0 to v.len - 1 do
    f (Array.unsafe_get v.data i)
  done

let to_array v = Array.sub v.data 0 v.len

let of_array a =
  let v = create ~capacity:(max 1 (Array.length a)) () in
  append_array v a;
  v

let unsafe_data v = v.data
