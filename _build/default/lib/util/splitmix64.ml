type t = { mutable state : int64 }

let create seed = { state = seed }

let copy g = { state = g.state }

(* Steele, Lea & Flood, "Fast splittable pseudorandom number generators". *)
let next g =
  let open Int64 in
  g.state <- add g.state 0x9E3779B97F4A7C15L;
  let z = g.state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let int g bound =
  if bound <= 0 then invalid_arg "Splitmix64.int: bound must be positive";
  (* Rejection-free modulo is fine here: bounds are tiny w.r.t. 2^62. *)
  let v = Int64.to_int (Int64.shift_right_logical (next g) 2) in
  v mod bound

let int_in g lo hi =
  if hi < lo then invalid_arg "Splitmix64.int_in: empty range";
  lo + int g (hi - lo + 1)

let float g bound =
  let v = Int64.to_float (Int64.shift_right_logical (next g) 11) in
  bound *. (v /. 9007199254740992.0 (* 2^53 *))

let bool g = Int64.logand (next g) 1L = 1L

let pick g a =
  if Array.length a = 0 then invalid_arg "Splitmix64.pick: empty array";
  a.(int g (Array.length a))

let shuffle g a =
  for i = Array.length a - 1 downto 1 do
    let j = int g (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let split g = create (next g)
