(** Growable arrays.

    A minimal dynamic-array implementation (OCaml 5.1 predates the stdlib
    [Dynarray]); used pervasively by the storage layer and the evaluation
    engine to accumulate tuples without knowing sizes in advance. *)

type 'a t

val create : ?capacity:int -> unit -> 'a t
(** [create ()] is an empty vector. [capacity] pre-sizes the backing array. *)

val length : 'a t -> int

val is_empty : 'a t -> bool

val get : 'a t -> int -> 'a
(** [get v i] is the [i]-th element. @raise Invalid_argument when out of bounds. *)

val set : 'a t -> int -> 'a -> unit
(** [set v i x] replaces the [i]-th element. @raise Invalid_argument when out
    of bounds. *)

val push : 'a t -> 'a -> unit
(** [push v x] appends [x], growing the backing array if needed. *)

val pop : 'a t -> 'a option
(** [pop v] removes and returns the last element, if any. *)

val clear : 'a t -> unit
(** [clear v] removes all elements (keeps the backing array). *)

val iter : ('a -> unit) -> 'a t -> unit

val iteri : (int -> 'a -> unit) -> 'a t -> unit

val fold_left : ('acc -> 'a -> 'acc) -> 'acc -> 'a t -> 'acc

val map : ('a -> 'b) -> 'a t -> 'b t

val exists : ('a -> bool) -> 'a t -> bool

val to_array : 'a t -> 'a array

val to_list : 'a t -> 'a list

val of_list : 'a list -> 'a t

val of_array : 'a array -> 'a t

val sort : ('a -> 'a -> int) -> 'a t -> unit
(** [sort cmp v] sorts in place. *)
