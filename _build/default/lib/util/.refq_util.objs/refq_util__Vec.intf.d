lib/util/vec.mli:
