lib/util/splitmix64.ml: Array Int64
