lib/util/splitmix64.mli:
