(** Unboxed growable [int] arrays.

    Specialized to avoid the polymorphic-array write barrier on the hot
    paths of the triple store and the relational engine, where tuples are
    flattened into one [int] stream. *)

type t

val create : ?capacity:int -> unit -> t

val length : t -> int

val get : t -> int -> int

val set : t -> int -> int -> unit

val push : t -> int -> unit

val append_array : t -> int array -> unit
(** [append_array v a] pushes every cell of [a], in order. *)

val blit_to : t -> int -> int array -> int -> int -> unit
(** [blit_to v src dst dst_pos len] copies [len] ints starting at [src]. *)

val clear : t -> unit

val iter : (int -> unit) -> t -> unit

val to_array : t -> int array

val of_array : int array -> t

val unsafe_data : t -> int array
(** Backing array; only indices [< length] are meaningful. Exposed for
    sort/scan loops in the storage layer. *)
