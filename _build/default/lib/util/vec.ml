type 'a t = {
  mutable data : 'a array;
  mutable len : int;
}

let create ?(capacity = 8) () = { data = [||]; len = -capacity }
(* Empty vectors carry their requested capacity as a negative length until the
   first push provides an element usable as array filler. *)

let capacity_of v = if v.len < 0 then -v.len else Array.length v.data

let length v = max v.len 0

let is_empty v = length v = 0

let check v i =
  if i < 0 || i >= length v then invalid_arg "Vec: index out of bounds"

let get v i =
  check v i;
  v.data.(i)

let set v i x =
  check v i;
  v.data.(i) <- x

let grow v x =
  let cap = capacity_of v in
  let new_cap = max 8 (if length v >= cap then 2 * cap else cap) in
  if Array.length v.data = 0 then begin
    v.data <- Array.make new_cap x;
    v.len <- max v.len 0
  end
  else begin
    let data = Array.make new_cap x in
    Array.blit v.data 0 data 0 v.len;
    v.data <- data
  end

let push v x =
  if length v >= Array.length v.data then grow v x;
  v.data.(length v) <- x;
  v.len <- length v + 1

let pop v =
  if is_empty v then None
  else begin
    v.len <- v.len - 1;
    Some v.data.(v.len)
  end

let clear v = v.len <- min v.len 0

let iter f v =
  for i = 0 to length v - 1 do
    f v.data.(i)
  done

let iteri f v =
  for i = 0 to length v - 1 do
    f i v.data.(i)
  done

let fold_left f acc v =
  let acc = ref acc in
  iter (fun x -> acc := f !acc x) v;
  !acc

let to_array v = Array.sub v.data 0 (length v)

let to_list v = Array.to_list (to_array v)

let map f v =
  let out = create ~capacity:(length v) () in
  iter (fun x -> push out (f x)) v;
  out

let exists p v =
  let rec loop i = i < length v && (p v.data.(i) || loop (i + 1)) in
  loop 0

let of_list l =
  let v = create () in
  List.iter (push v) l;
  v

let of_array a =
  let v = create ~capacity:(Array.length a) () in
  Array.iter (push v) a;
  v

let sort cmp v =
  let a = to_array v in
  Array.sort cmp a;
  Array.blit a 0 v.data 0 (Array.length a)
