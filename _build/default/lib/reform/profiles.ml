type t = {
  name : string;
  use_subclass : bool;
  use_subproperty : bool;
  use_domain_range : bool;
  use_schema_atoms : bool;
}

let complete =
  {
    name = "complete";
    use_subclass = true;
    use_subproperty = true;
    use_domain_range = true;
    use_schema_atoms = true;
  }

let hierarchies_only =
  {
    name = "hierarchies-only";
    use_subclass = true;
    use_subproperty = true;
    use_domain_range = false;
    use_schema_atoms = false;
  }

let subclass_only =
  {
    name = "subclass-only";
    use_subclass = true;
    use_subproperty = false;
    use_domain_range = false;
    use_schema_atoms = false;
  }

let none =
  {
    name = "none";
    use_subclass = false;
    use_subproperty = false;
    use_domain_range = false;
    use_schema_atoms = false;
  }

let all = [ complete; hierarchies_only; subclass_only; none ]

let pp ppf p = Fmt.string ppf p.name
