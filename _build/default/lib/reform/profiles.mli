(** Reformulation profiles: which RDFS constraints the rewriter uses.

    The complete profile implements the full rule set of [9]. The partial
    profiles model the {e incomplete} fixed reformulation strategies of
    off-the-shelf RDF platforms integrated in the demonstration (Virtuoso,
    AllegroGraph), which ignore some RDFS constraints [6] and therefore
    miss answers — exactly what experiment E6 measures. *)

type t = {
  name : string;
  use_subclass : bool;  (** rules R1 / R5 *)
  use_subproperty : bool;  (** rules R4 / R8 *)
  use_domain_range : bool;  (** rules R2 / R3 / R6 / R7 *)
  use_schema_atoms : bool;
      (** rules R10–R13: instantiation of query atoms over the RDFS
          vocabulary against the schema closure *)
}

val complete : t
(** All thirteen rules — the reference strategy of [9]. *)

val hierarchies_only : t
(** Subclass and subproperty reasoning only (domain/range ignored): a
    Virtuoso-style fixed strategy. *)

val subclass_only : t
(** Subclass reasoning only: an AllegroGraph-RDFS++-style strategy. *)

val none : t
(** No reasoning: plain query evaluation. *)

val all : t list

val pp : t Fmt.t
