(** Per-atom backward chaining — our rendering of the 13 reformulation
    rules of [9] (see DESIGN.md §2 for the rule table).

    Every instance-level entailment rule of the DB fragment has exactly one
    instance premise (its other premises are schema constraints), so a
    query atom reformulates {e independently} of the other atoms into a
    finite set of rewritings. A rewriting is:

    - a replacement atom ([Some atom]) to be evaluated against the explicit
      triples, possibly introducing a fresh non-distinguished variable
      (domain/range rules), or [None] when the atom is a query over a
      schema triple that the schema closure entails by itself (the atom is
      then dropped as true);
    - a substitution binding the atom's variables to schema constants
      (class/property-position variable instantiation).

    The identity rewriting (the atom itself, empty substitution) is always
    included: explicit triples answer the atom too. *)

open Refq_rdf
open Refq_schema
open Refq_query

type rewriting = {
  atom : Cq.atom option;
  subst : Cq.Subst.t;
}

val rewrite :
  ?profile:Profiles.t ->
  Closure.t ->
  fresh:(unit -> string) ->
  Cq.atom ->
  rewriting list
(** All rewritings of the atom under the (closed) schema. [fresh] supplies
    globally fresh variable names (prefix {!Cq.fresh_var_prefix}). The
    default profile is {!Profiles.complete}. *)

val count : ?profile:Profiles.t -> Closure.t -> Cq.atom -> int
(** Number of rewritings, without materializing fresh variables. *)

val pp_rewriting : rewriting Fmt.t

val unify_pat : Cq.pat -> Term.t -> Cq.Subst.t -> Cq.Subst.t option
(** [unify_pat pat t subst] binds a variable pattern to [t] or checks a
    constant pattern against it. Exposed for the reformulation engine and
    tests. *)
