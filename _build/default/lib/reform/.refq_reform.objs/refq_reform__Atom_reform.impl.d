lib/reform/atom_reform.ml: Closure Cq Fmt List Printf Profiles Refq_query Refq_rdf Refq_schema Term Vocab
