lib/reform/reformulate.ml: Atom_reform Cover Cq Hashtbl Jucq List Printf Refq_query Ucq
