lib/reform/profiles.ml: Fmt
