lib/reform/atom_reform.mli: Closure Cq Fmt Profiles Refq_query Refq_rdf Refq_schema Term
