lib/reform/reformulate.mli: Closure Cover Cq Jucq Profiles Refq_query Refq_schema Ucq
