lib/reform/profiles.mli: Fmt
