(** Reformulation-based query answering: CQ → UCQ / SCQ / JUCQ.

    The query reformulation algorithm of [9] exhaustively applies the
    thirteen rules ({!Atom_reform}) in a backward-chaining fashion,
    producing a UCQ [qref] such that evaluating [qref] against the explicit
    triples retrieves the complete answer: [q(db∞) = qref(db)].

    Query covering ([5], Section 4 of the paper) generalizes this: each
    cover fragment is reformulated with the same CQ-to-UCQ algorithm and
    the fragments' results are joined, yielding a JUCQ. The one-fragment
    cover gives the classical UCQ; the singleton cover gives the SCQ of
    [15]; everything in between is the search space of GCov. *)

open Refq_schema
open Refq_query

exception Too_large of int
(** Raised by {!cq_to_ucq} when the reformulation exceeds [max_disjuncts]
    (the paper's 318,096-CQ union "could not even be parsed"; the argument
    is the number of disjuncts at which generation stopped). *)

val cq_to_ucq :
  ?profile:Profiles.t -> ?max_disjuncts:int -> Closure.t -> Cq.t -> Ucq.t
(** The CQ-to-UCQ reformulation: cartesian product of the per-atom
    rewritings with substitution merging; the merged substitution is
    applied to the head and every kept atom. [max_disjuncts] defaults to
    1,000,000. *)

val count_disjuncts : ?profile:Profiles.t -> Closure.t -> Cq.t -> int
(** Exact number of disjuncts [cq_to_ucq] would produce, without
    materializing their bodies (and before duplicate elimination); used by
    the size sweeps of experiment E2. *)

val fragment_ucq :
  ?profile:Profiles.t -> ?max_disjuncts:int -> Closure.t -> Cq.t ->
  int list -> Jucq.fragment
(** Reformulate one cover fragment (atom indices) of the query into a
    fragment UCQ whose output columns are the fragment's visible
    variables. *)

val cover_to_jucq :
  ?profile:Profiles.t -> ?max_disjuncts:int -> Closure.t -> Cq.t ->
  Cover.t -> Jucq.t
(** The JUCQ induced by a cover. *)

val scq :
  ?profile:Profiles.t -> ?max_disjuncts:int -> Closure.t -> Cq.t -> Jucq.t
(** The SCQ reformulation [15]: {!cover_to_jucq} on the singleton cover. *)

val ucq_as_jucq :
  ?profile:Profiles.t -> ?max_disjuncts:int -> Closure.t -> Cq.t -> Jucq.t
(** The UCQ reformulation wrapped as a one-fragment JUCQ, so that all
    strategies flow through the same evaluation path. *)
