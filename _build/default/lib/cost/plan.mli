(** Logical plan inspection (demo step 3: "inspect the chosen query plan;
    cardinalities and costs of (sub)queries").

    A plan records the greedy atom order the engine will execute for a CQ,
    with the estimated extension factor and intermediate cardinality at
    each step, and — for JUCQs — the per-fragment profiles and the
    fragment join order. *)

open Refq_query

type step = {
  atom : Cq.atom;
  extension : float;  (** estimated matches per intermediate tuple *)
  cardinality : float;  (** estimated intermediate size after this step *)
}

type cq_plan = {
  steps : step list;
  answers : float;  (** estimated distinct answers *)
}

val explain_cq : Cardinality.env -> Cq.t -> cq_plan

type fragment_plan = {
  out : string list;
  disjuncts : int;
  est_cost : float;
  est_card : float;
}

type jucq_plan = {
  fragments : fragment_plan list;  (** in join order (smallest-connected-first) *)
  est_total : Cost_model.estimate;
}

val explain_jucq :
  ?params:Cost_model.params -> Cardinality.env -> Jucq.t -> jucq_plan

val pp_cq_plan : cq_plan Fmt.t

val pp_jucq_plan : jucq_plan Fmt.t
