open Refq_query
open Refq_storage

type measurement = {
  probe_ns : float;
  tuple_ns : float;
  hash_ns : float;
  cq_overhead_ns : float;
}

let time_ns f =
  (* Monotonic-ish: Sys.time is CPU time, adequate for tight loops. *)
  let reps = 3 in
  let best = ref infinity in
  for _ = 1 to reps do
    let t0 = Sys.time () in
    f ();
    let dt = Sys.time () -. t0 in
    if dt < !best then best := dt
  done;
  !best *. 1e9

let measure env =
  let store = env.Cardinality.store in
  if Store.size store = 0 then invalid_arg "Calibrate.measure: empty store";
  Store.freeze store;
  (* Pick a property id that exists, for realistic probes. *)
  let some_p = ref None in
  Store.iter_all store (fun _ p _ -> if !some_p = None then some_p := Some p);
  let p = Option.get !some_p in
  let n_probe = 20_000 in
  let probe_ns =
    time_ns (fun () ->
        for _ = 1 to n_probe do
          ignore (Store.count_pattern store ~s:None ~p:(Some p) ~o:None)
        done)
    /. float_of_int n_probe
  in
  let n_tuple = 200_000 in
  let tuple_ns =
    let v = Refq_util.Int_vec.create () in
    time_ns (fun () ->
        Refq_util.Int_vec.clear v;
        for i = 1 to n_tuple do
          Refq_util.Int_vec.push v i
        done)
    /. float_of_int n_tuple
  in
  let n_hash = 100_000 in
  let hash_ns =
    let tbl = Hashtbl.create 1024 in
    time_ns (fun () ->
        Hashtbl.reset tbl;
        for i = 1 to n_hash do
          Hashtbl.replace tbl (i land 4095) i
        done)
    /. float_of_int n_hash
  in
  (* End-to-end cost of one (empty-ish) CQ evaluation: plan + setup. *)
  let tiny =
    Cq.make
      ~head:[ Cq.var "x" ]
      ~body:
        [
          Cq.atom (Cq.var "x")
            (Cq.cst (Store.decode_id store p))
            (Cq.var "y");
        ]
  in
  let n_cq = 200 in
  let per_cq =
    time_ns (fun () ->
        for _ = 1 to n_cq do
          ignore (Cardinality.order_atoms env tiny.Cq.body)
        done)
    /. float_of_int n_cq
  in
  { probe_ns; tuple_ns; hash_ns; cq_overhead_ns = per_cq }

let params_of_measurement ?(base = Cost_model.default_params) m =
  let unit = Float.max 1e-3 m.tuple_ns in
  {
    base with
    Cost_model.c_probe = Float.max 0.1 (m.probe_ns /. unit);
    c_tuple = 1.0;
    c_hash = Float.max 0.1 (m.hash_ns /. unit);
    c_cq_overhead = Float.max 1.0 (m.cq_overhead_ns /. unit);
  }

let calibrate ?base env = params_of_measurement ?base (measure env)
