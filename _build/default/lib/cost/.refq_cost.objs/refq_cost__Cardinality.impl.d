lib/cost/cardinality.ml: Cq List Map Option Refq_query Refq_storage Stats Store String
