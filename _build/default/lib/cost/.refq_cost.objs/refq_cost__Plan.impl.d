lib/cost/plan.ml: Cardinality Cost_model Cq Float Fmt Jucq List Option Refq_query String Ucq
