lib/cost/cardinality.mli: Cq Map Refq_query Refq_storage
