lib/cost/cost_model.ml: Cardinality Cq Fmt Hashtbl Jucq List Option Printf Refq_query Ucq
