lib/cost/calibrate.mli: Cardinality Cost_model
