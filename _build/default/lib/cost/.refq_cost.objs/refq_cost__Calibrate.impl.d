lib/cost/calibrate.ml: Cardinality Cost_model Cq Float Hashtbl Option Refq_query Refq_storage Refq_util Store Sys
