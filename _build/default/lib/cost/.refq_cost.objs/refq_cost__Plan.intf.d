lib/cost/plan.mli: Cardinality Cost_model Cq Fmt Jucq Refq_query
