lib/cost/cost_model.mli: Cardinality Cq Fmt Jucq Refq_query Ucq
