(** Cardinality estimation.

    Standard database-textbook estimates over the store's statistics:
    exact index counts for the constant part of a triple pattern, uniform
    selectivities ([1 / distinct]) for positions occupied by
    already-bound variables, and the [min]-of-distincts rule for joins.
    These estimates feed both the cost model and the evaluation engine's
    greedy atom ordering. *)

open Refq_query

type env = {
  store : Refq_storage.Store.t;
  stats : Refq_storage.Stats.t;
}

val make_env : Refq_storage.Store.t -> env
(** Computes statistics for the store. *)

module Smap : Map.S with type key = string

type state = {
  card : float;  (** estimated intermediate-result cardinality *)
  distincts : float Smap.t;  (** per bound variable: estimated distinct values *)
}

val initial : state

val atom_extension : env -> state -> Cq.atom -> float
(** Estimated number of matching triples for the atom, per intermediate
    tuple of [state] (bound variables contribute their selectivity). *)

val extend : env -> state -> Cq.atom -> state
(** State after joining the atom into the intermediate result. *)

val order_atoms : env -> Cq.atom list -> Cq.atom list
(** Greedy sideways-information-passing order: repeatedly pick the atom
    with the smallest {!atom_extension} under the variables bound so far.
    This is the single atom-ordering heuristic, shared by the cost model
    and the execution engine so that estimated and actual plans match. *)

val cq : env -> Cq.t -> float
(** Estimated number of (distinct) answers of the CQ. *)

val distinct_of_var : state -> string -> float
(** Distinct-value estimate of a bound variable (defaults to [card]). *)
