(** Cost-model calibration.

    The companion paper fits the cost function's constants to each RDBMS it
    drives. This module does the same for the in-process engine: it times
    the three primitive operations the model charges for — an index probe,
    producing a tuple, and a hash build/probe — on the actual store, and
    rescales {!Cost_model.params} so that one cost unit ≈ one produced
    tuple with the measured relative weights. The per-CQ overhead is
    measured by evaluating a trivial one-atom query end to end. *)

type measurement = {
  probe_ns : float;
  tuple_ns : float;
  hash_ns : float;
  cq_overhead_ns : float;
}

val measure : Cardinality.env -> measurement
(** Time the primitives on the given store (microsecond-scale loops; takes
    well under a second). The store must be non-empty. *)

val params_of_measurement : ?base:Cost_model.params -> measurement -> Cost_model.params
(** Rescale [base] (default {!Cost_model.default_params}) to the measured
    relative weights, keeping [c_tuple = 1.0] as the unit. *)

val calibrate : ?base:Cost_model.params -> Cardinality.env -> Cost_model.params
(** [params_of_measurement (measure env)]. *)
