open Refq_query
open Refq_storage

type env = {
  store : Store.t;
  stats : Stats.t;
}

let make_env store = { store; stats = Stats.compute store }

module Smap = Map.Make (String)

type state = {
  card : float;
  distincts : float Smap.t;
}

let initial = { card = 1.0; distincts = Smap.empty }

let distinct_of_var st v =
  Option.value ~default:st.card (Smap.find_opt v st.distincts)

(* Per-position distinct-value estimates for an atom whose property is
   [p_id] (when known). *)
let pos_distincts env p_id =
  let stats = env.stats in
  match p_id with
  | Some p -> (
    match Stats.prop_stat stats p with
    | Some ps -> (float_of_int ps.Stats.distinct_s, float_of_int ps.Stats.distinct_o)
    | None -> (1.0, 1.0))
  | None ->
    ( float_of_int (max 1 (Stats.n_distinct_subjects stats)),
      float_of_int (max 1 (Stats.n_distinct_objects stats)) )

let id_of env = function
  | Cq.Cst t -> Some (Store.find_term env.store t)
  | Cq.Var _ -> None

(* Exact count of triples matching the constant part of the atom, from the
   store indexes. An absent constant yields 0. *)
let base_count env (a : Cq.atom) =
  let resolve = function
    | Cq.Cst t -> (
      match Store.find_term env.store t with
      | Some id -> `Bound id
      | None -> `Absent)
    | Cq.Var _ -> `Free
  in
  match resolve a.s, resolve a.p, resolve a.o with
  | `Absent, _, _ | _, `Absent, _ | _, _, `Absent -> 0.0
  | rs, rp, ro ->
    let opt = function `Bound id -> Some id | `Free -> None | `Absent -> None in
    float_of_int (Store.count_pattern env.store ~s:(opt rs) ~p:(opt rp) ~o:(opt ro))

let atom_extension_state env st (a : Cq.atom) =
  let base = base_count env a in
  if base = 0.0 then 0.0
  else begin
    let p_id = match id_of env a.p with Some (Some id) -> Some id | _ -> None in
    let ds, d_o = pos_distincts env p_id in
    let bound v = Smap.mem v st.distincts in
    (* Selectivity of a position occupied by an already-bound variable. *)
    let sel pos_distinct = 1.0 /. max 1.0 pos_distinct in
    let dp = float_of_int (max 1 (Stats.n_distinct_properties env.stats)) in
    let factor =
      (match a.s with Cq.Var v when bound v -> sel ds | _ -> 1.0)
      *. (match a.p with Cq.Var v when bound v -> sel dp | _ -> 1.0)
      *. (match a.o with Cq.Var v when bound v -> sel d_o | _ -> 1.0)
    in
    (* Repeated variable inside the atom (e.g. [x p x]): extra equality
       selectivity on the second occurrence. *)
    let rep =
      match a.s, a.o with
      | Cq.Var v1, Cq.Var v2 when String.equal v1 v2 && not (bound v1) -> sel d_o
      | _ -> 1.0
    in
    base *. factor *. rep
  end

let atom_extension env st a = atom_extension_state env st a

let extend env st (a : Cq.atom) =
  let ext = atom_extension_state env st a in
  let card = st.card *. ext in
  let p_id = match id_of env a.p with Some (Some id) -> Some id | _ -> None in
  let ds, d_o = pos_distincts env p_id in
  let dp = float_of_int (max 1 (Stats.n_distinct_properties env.stats)) in
  let bind pos_distinct v distincts =
    if Smap.mem v distincts then distincts
    else Smap.add v (max 1.0 (min card pos_distinct)) distincts
  in
  let distincts = st.distincts in
  let distincts =
    match a.s with Cq.Var v -> bind ds v distincts | Cq.Cst _ -> distincts
  in
  let distincts =
    match a.p with Cq.Var v -> bind dp v distincts | Cq.Cst _ -> distincts
  in
  let distincts =
    match a.o with Cq.Var v -> bind d_o v distincts | Cq.Cst _ -> distincts
  in
  { card; distincts }

let order_atoms env atoms =
  let rec loop st remaining acc =
    match remaining with
    | [] -> List.rev acc
    | _ ->
      (* Prefer atoms connected to the bound variables (avoid cartesian
         products), then the smallest estimated extension. *)
      let connected a =
        Smap.is_empty st.distincts
        || List.exists (fun v -> Smap.mem v st.distincts) (Cq.atom_vars a)
        || Cq.atom_vars a = []
      in
      let candidates =
        match List.filter connected remaining with
        | [] -> remaining
        | cs -> cs
      in
      let best =
        List.fold_left
          (fun acc a ->
            let ext = atom_extension_state env st a in
            match acc with
            | Some (_, best_ext) when best_ext <= ext -> acc
            | _ -> Some (a, ext))
          None candidates
      in
      let a, _ = Option.get best in
      let remaining = List.filter (fun a' -> a' != a) remaining in
      loop (extend env st a) remaining (a :: acc)
  in
  loop initial atoms []

let cq env q =
  let ordered = order_atoms env q.Cq.body in
  let st = List.fold_left (extend env) initial ordered in
  (* Projection with duplicate elimination caps the result by the product
     of the head variables' distinct-value estimates. *)
  let cap =
    List.fold_left
      (fun acc pat ->
        match pat with
        | Cq.Var v -> acc *. distinct_of_var st v
        | Cq.Cst _ -> acc)
      1.0 q.Cq.head
  in
  min st.card cap
