open Refq_rdf
open Refq_query
open Refq_schema
open Refq_storage
module Rng = Refq_util.Splitmix64

let ns = "http://refq.org/geo#"

let env = Namespace.add Namespace.default ~prefix:"geo" ~uri:ns

let c name = Term.uri (ns ^ name)

(* Classes *)
let territorial_unit = c "TerritorialUnit"
let region = c "Region"
let departement = c "Departement"
let commune = c "Commune"
let populated_place = c "PopulatedPlace"
let city = c "City"
let town = c "Town"
let village = c "Village"

(* Properties *)
let subdivision_of = c "subdivisionOf"
let in_departement = c "inDepartement"
let in_region = c "inRegion"
let seat_of = c "seatOf"
let located_in = c "locatedIn"
let population = c "population"
let name_prop = c "name"

let schema =
  Schema.of_list
    [
      Schema.subclass region territorial_unit;
      Schema.subclass departement territorial_unit;
      Schema.subclass commune territorial_unit;
      Schema.subclass city populated_place;
      Schema.subclass town populated_place;
      Schema.subclass village populated_place;
      Schema.subproperty in_departement subdivision_of;
      Schema.subproperty in_region subdivision_of;
      Schema.domain subdivision_of territorial_unit;
      Schema.range subdivision_of territorial_unit;
      Schema.range in_departement departement;
      Schema.range in_region region;
      Schema.domain located_in populated_place;
      Schema.range located_in commune;
      Schema.domain seat_of populated_place;
      Schema.range seat_of territorial_unit;
      Schema.domain population territorial_unit;
    ]

let schema_graph = Schema.to_graph schema

let region_uri i = Term.uri (Printf.sprintf "%sregion/R%d" ns i)
let dept_uri r d = Term.uri (Printf.sprintf "%sdept/R%d-D%d" ns r d)
let commune_uri r d k = Term.uri (Printf.sprintf "%scommune/R%d-D%d-C%d" ns r d k)
let place_uri r d k = Term.uri (Printf.sprintf "%splace/R%d-D%d-P%d" ns r d k)

let generate ?(seed = 11L) ~scale () =
  if scale <= 0 then invalid_arg "Geo.generate: scale must be positive";
  let store = Store.create () in
  Store.add_graph store schema_graph;
  let rng = Rng.create seed in
  let add s p o = Store.add store s p o in
  let pop_lit n = Term.typed_literal (string_of_int n) Vocab.xsd_integer in
  for r = 0 to scale - 1 do
    let reg = region_uri r in
    add reg Vocab.rdf_type region;
    add reg name_prop (Term.literal (Printf.sprintf "Region %d" r));
    let n_depts = Rng.int_in rng 2 5 in
    let region_pop = ref 0 in
    for d = 0 to n_depts - 1 do
      let dpt = dept_uri r d in
      add dpt Vocab.rdf_type departement;
      add dpt in_region reg;
      add dpt name_prop (Term.literal (Printf.sprintf "Departement %d-%d" r d));
      let n_communes = Rng.int_in rng 10 30 in
      let dept_pop = ref 0 in
      for k = 0 to n_communes - 1 do
        let com = commune_uri r d k in
        add com Vocab.rdf_type commune;
        add com in_departement dpt;
        add com name_prop (Term.literal (Printf.sprintf "Commune %d-%d-%d" r d k));
        let pop = 50 + Rng.int rng 50_000 in
        dept_pop := !dept_pop + pop;
        add com population (pop_lit pop);
        (* Each commune hosts a populated place; the most specific class
           depends on its population. *)
        let place = place_uri r d k in
        let cls = if pop > 20_000 then city else if pop > 2_000 then town else village in
        add place Vocab.rdf_type cls;
        add place located_in com;
        add place name_prop (Term.literal (Printf.sprintf "Place %d-%d-%d" r d k));
        (* The first place of a département is its seat. *)
        if k = 0 then add place seat_of dpt
      done;
      add dpt population (pop_lit !dept_pop);
      region_pop := !region_pop + !dept_pop
    done;
    add reg population (pop_lit !region_pop)
  done;
  store

let r0 = region_uri 0

let queries =
  let v = Cq.var and k = Cq.cst in
  [
    (* all territorial units subdivided (directly) from region 0 *)
    ( "G1",
      Cq.make ~head:[ v "x" ]
        ~body:
          [
            Cq.atom (v "x") (k Vocab.rdf_type) (k territorial_unit);
            Cq.atom (v "x") (k subdivision_of) (k r0);
          ] );
    (* populated places with the commune and département they belong to *)
    ( "G2",
      Cq.make ~head:[ v "p"; v "c"; v "d" ]
        ~body:
          [
            Cq.atom (v "p") (k Vocab.rdf_type) (k populated_place);
            Cq.atom (v "p") (k located_in) (v "c");
            Cq.atom (v "c") (k in_departement) (v "d");
          ] );
    (* seats of départements of a known region, with population *)
    ( "G3",
      Cq.make ~head:[ v "p"; v "d" ]
        ~body:
          [
            Cq.atom (v "p") (k seat_of) (v "d");
            Cq.atom (v "d") (k in_region) (k r0);
            Cq.atom (v "d") (k Vocab.rdf_type) (k departement);
          ] );
    (* any unit with its population (tests domain typing) *)
    ( "G4",
      Cq.make ~head:[ v "x"; v "n" ]
        ~body:
          [
            Cq.atom (v "x") (k Vocab.rdf_type) (k territorial_unit);
            Cq.atom (v "x") (k population) (v "n");
          ] );
  ]
