(** French-administrative-style geographic workload (INSEE / IGN stand-in).

    The demonstration uses French statistical (INSEE) and geographical
    (IGN) datasets; offline we generate the same shape: the
    region / département / commune subdivision hierarchy with populated
    places, population figures and administrative seats. Deterministic for
    a given [(seed, scale)]. *)

open Refq_rdf
open Refq_query
open Refq_schema
open Refq_storage

val ns : string

val env : Namespace.t
(** Binds [geo:]. *)

val schema : Schema.t

val schema_graph : Graph.t

val generate : ?seed:int64 -> scale:int -> unit -> Store.t
(** [scale] is the number of regions; each region carries 2–5
    départements of 10–30 communes each. *)

val queries : (string * Cq.t) list
