open Refq_rdf
open Refq_query
open Refq_schema
open Refq_storage
module Rng = Refq_util.Splitmix64

let ns = "http://refq.org/univ-bench#"

let env = Namespace.add Namespace.default ~prefix:"ub" ~uri:ns

let c name = Term.uri (ns ^ name)

(* Classes *)
let organization = c "Organization"
let university_cls = c "University"
let department = c "Department"
let research_group = c "ResearchGroup"
let person = c "Person"
let employee = c "Employee"
let faculty = c "Faculty"
let professor = c "Professor"
let full_professor = c "FullProfessor"
let associate_professor = c "AssociateProfessor"
let assistant_professor = c "AssistantProfessor"
let visiting_professor = c "VisitingProfessor"
let lecturer = c "Lecturer"
let chair = c "Chair"
let dean = c "Dean"
let student = c "Student"
let undergraduate_student = c "UndergraduateStudent"
let graduate_student = c "GraduateStudent"
let research_assistant = c "ResearchAssistant"
let teaching_assistant = c "TeachingAssistant"
let work = c "Work"
let course = c "Course"
let graduate_course = c "GraduateCourse"
let research = c "Research"
let publication = c "Publication"
let article = c "Article"
let book = c "Book"
let technical_report = c "TechnicalReport"

(* Properties *)
let member_of = c "memberOf"
let works_for = c "worksFor"
let head_of = c "headOf"
let degree_from = c "degreeFrom"
let masters_degree_from = c "mastersDegreeFrom"
let doctoral_degree_from = c "doctoralDegreeFrom"
let undergraduate_degree_from = c "undergraduateDegreeFrom"
let teacher_of = c "teacherOf"
let takes_course = c "takesCourse"
let teaching_assistant_of = c "teachingAssistantOf"
let advisor = c "advisor"
let publication_author = c "publicationAuthor"
let sub_organization_of = c "subOrganizationOf"
let research_interest = c "researchInterest"
let email_address = c "emailAddress"
let name_prop = c "name"

let schema =
  Schema.of_list
    [
      (* Organizations *)
      Schema.subclass university_cls organization;
      Schema.subclass department organization;
      Schema.subclass research_group organization;
      (* People *)
      Schema.subclass employee person;
      Schema.subclass faculty employee;
      Schema.subclass professor faculty;
      Schema.subclass full_professor professor;
      Schema.subclass associate_professor professor;
      Schema.subclass assistant_professor professor;
      Schema.subclass visiting_professor professor;
      Schema.subclass lecturer faculty;
      Schema.subclass chair professor;
      Schema.subclass dean professor;
      Schema.subclass student person;
      Schema.subclass undergraduate_student student;
      Schema.subclass graduate_student student;
      Schema.subclass research_assistant student;
      Schema.subclass teaching_assistant student;
      (* Works *)
      Schema.subclass course work;
      Schema.subclass research work;
      Schema.subclass graduate_course course;
      Schema.subclass article publication;
      Schema.subclass book publication;
      Schema.subclass technical_report publication;
      (* Property hierarchy *)
      Schema.subproperty works_for member_of;
      Schema.subproperty head_of works_for;
      Schema.subproperty masters_degree_from degree_from;
      Schema.subproperty doctoral_degree_from degree_from;
      Schema.subproperty undergraduate_degree_from degree_from;
      Schema.subproperty teaching_assistant_of takes_course;
      (* Domains / ranges *)
      Schema.domain member_of person;
      Schema.range member_of organization;
      Schema.domain works_for employee;
      Schema.domain head_of chair;
      Schema.range head_of department;
      Schema.domain degree_from person;
      Schema.range degree_from university_cls;
      Schema.domain teacher_of faculty;
      Schema.range teacher_of course;
      Schema.domain takes_course student;
      Schema.range takes_course course;
      Schema.domain advisor student;
      Schema.range advisor professor;
      Schema.domain publication_author publication;
      Schema.range publication_author person;
      Schema.domain sub_organization_of organization;
      Schema.range sub_organization_of organization;
      Schema.domain research_interest faculty;
      Schema.domain email_address person;
    ]

let schema_graph = Schema.to_graph schema

let university i = Term.uri (Printf.sprintf "http://www.Univ%d.edu" i)

let dept u d = Term.uri (Printf.sprintf "http://www.Dept%d.Univ%d.edu" d u)

let dept_entity u d kind k =
  Term.uri (Printf.sprintf "http://www.Dept%d.Univ%d.edu/%s%d" d u kind k)

(* ------------------------------------------------------------------ *)
(* Generation                                                          *)
(* ------------------------------------------------------------------ *)

type ctx = {
  store : Store.t;
  rng : Rng.t;
  n_univ : int;
}

let add ctx s p o = Store.add ctx.store s p o

let typed ctx s cls = add ctx s Vocab.rdf_type cls

let any_university ctx = university (Rng.int ctx.rng ctx.n_univ)

let person_extras ctx who label =
  add ctx who name_prop (Term.literal label);
  add ctx who email_address
    (Term.literal (Printf.sprintf "%s@univ.edu" label))

let gen_department ctx u d =
  let dpt = dept u d in
  typed ctx dpt department;
  add ctx dpt sub_organization_of (university u);
  add ctx dpt name_prop (Term.literal (Printf.sprintf "Department%d" d));
  (* Research groups *)
  let n_groups = Rng.int_in ctx.rng 1 3 in
  for g = 0 to n_groups - 1 do
    let grp = dept_entity u d "ResearchGroup" g in
    typed ctx grp research_group;
    add ctx grp sub_organization_of dpt
  done;
  (* Faculty: one chair + professors of the three ranks + lecturers. Only
     the most specific class is asserted; worksFor (not memberOf) is the
     explicit membership edge, leaving rdfs7 work for reformulation. *)
  let faculty_members = ref [] in
  let mk_faculty kind cls count =
    let made = ref [] in
    for k = 0 to count - 1 do
      let f = dept_entity u d kind k in
      typed ctx f cls;
      add ctx f works_for dpt;
      person_extras ctx f (Printf.sprintf "%s%d.D%d.U%d" kind k d u);
      add ctx f undergraduate_degree_from (any_university ctx);
      add ctx f masters_degree_from (any_university ctx);
      add ctx f doctoral_degree_from (any_university ctx);
      add ctx f research_interest
        (Term.literal (Printf.sprintf "Research%d" (Rng.int ctx.rng 30)));
      faculty_members := f :: !faculty_members;
      made := f :: !made
    done;
    !made
  in
  let fulls = mk_faculty "FullProfessor" full_professor (Rng.int_in ctx.rng 2 3) in
  let associates =
    mk_faculty "AssociateProfessor" associate_professor (Rng.int_in ctx.rng 3 4)
  in
  let assistants =
    mk_faculty "AssistantProfessor" assistant_professor (Rng.int_in ctx.rng 3 4)
  in
  let _lecturers = mk_faculty "Lecturer" lecturer (Rng.int_in ctx.rng 2 3) in
  (match fulls with
  | head :: _ -> add ctx head head_of dpt
  | [] -> ());
  let faculty_arr = Array.of_list !faculty_members in
  (* Courses: each faculty member teaches 1-2; 1/4 graduate level. *)
  let courses = ref [] in
  let grad_courses = ref [] in
  let n_courses = ref 0 in
  Array.iter
    (fun f ->
      for _ = 1 to Rng.int_in ctx.rng 1 2 do
        let k = !n_courses in
        incr n_courses;
        let crs = dept_entity u d "Course" k in
        if Rng.int ctx.rng 4 = 0 then begin
          typed ctx crs graduate_course;
          grad_courses := crs :: !grad_courses
        end
        else begin
          typed ctx crs course;
          courses := crs :: !courses
        end;
        add ctx f teacher_of crs
      done)
    faculty_arr;
  let courses = Array.of_list !courses in
  let grad_courses = Array.of_list !grad_courses in
  let professors = Array.of_list (fulls @ associates @ assistants) in
  (* Undergraduate students *)
  let n_ugrad = Rng.int_in ctx.rng 20 35 in
  for k = 0 to n_ugrad - 1 do
    let s = dept_entity u d "UndergraduateStudent" k in
    typed ctx s undergraduate_student;
    add ctx s member_of dpt;
    person_extras ctx s (Printf.sprintf "UG%d.D%d.U%d" k d u);
    if Array.length courses > 0 then
      for _ = 1 to Rng.int_in ctx.rng 2 4 do
        add ctx s takes_course (Rng.pick ctx.rng courses)
      done;
    if Array.length professors > 0 && Rng.int ctx.rng 5 = 0 then
      add ctx s advisor (Rng.pick ctx.rng professors)
  done;
  (* Graduate students *)
  let n_grad = Rng.int_in ctx.rng 8 14 in
  let grads = ref [] in
  for k = 0 to n_grad - 1 do
    let s = dept_entity u d "GraduateStudent" k in
    typed ctx s graduate_student;
    add ctx s member_of dpt;
    person_extras ctx s (Printf.sprintf "GR%d.D%d.U%d" k d u);
    add ctx s undergraduate_degree_from (any_university ctx);
    if Rng.int ctx.rng 3 = 0 then
      add ctx s masters_degree_from (any_university ctx);
    if Array.length grad_courses > 0 then
      for _ = 1 to Rng.int_in ctx.rng 1 3 do
        add ctx s takes_course (Rng.pick ctx.rng grad_courses)
      done;
    if Array.length professors > 0 then
      add ctx s advisor (Rng.pick ctx.rng professors);
    (* Some graduate students TA a course (teachingAssistantOf ⊑
       takesCourse) or RA; asserted with the most specific class only. *)
    if Array.length courses > 0 && Rng.int ctx.rng 4 = 0 then begin
      let s_ta = dept_entity u d "TeachingAssistant" k in
      typed ctx s_ta teaching_assistant;
      add ctx s_ta member_of dpt;
      add ctx s_ta teaching_assistant_of (Rng.pick ctx.rng courses)
    end;
    grads := s :: !grads
  done;
  let grads = Array.of_list !grads in
  (* Publications: each faculty member authors 2-4; half co-authored by a
     graduate student. Most specific publication class asserted. *)
  let n_pubs = ref 0 in
  Array.iter
    (fun f ->
      for _ = 1 to Rng.int_in ctx.rng 2 4 do
        let k = !n_pubs in
        incr n_pubs;
        let pub = dept_entity u d "Publication" k in
        let cls =
          match Rng.int ctx.rng 4 with
          | 0 -> book
          | 1 -> technical_report
          | _ -> article
        in
        typed ctx pub cls;
        add ctx pub publication_author f;
        add ctx pub name_prop (Term.literal (Printf.sprintf "Pub%d.D%d.U%d" k d u));
        if Array.length grads > 0 && Rng.bool ctx.rng then
          add ctx pub publication_author (Rng.pick ctx.rng grads)
      done)
    faculty_arr

let generate ?(seed = 42L) ~scale () =
  if scale <= 0 then invalid_arg "Lubm.generate: scale must be positive";
  let store = Store.create () in
  Store.add_graph store schema_graph;
  let ctx = { store; rng = Rng.create seed; n_univ = scale } in
  for u = 0 to scale - 1 do
    let univ = university u in
    typed ctx univ university_cls;
    add ctx univ name_prop (Term.literal (Printf.sprintf "University%d" u));
    let n_depts = Rng.int_in ctx.rng 3 5 in
    for d = 0 to n_depts - 1 do
      gen_department ctx u d
    done
  done;
  store

(* ------------------------------------------------------------------ *)
(* Queries                                                             *)
(* ------------------------------------------------------------------ *)

let u0 = university 0

let example1_query =
  Cq.make
    ~head:[ Cq.var "x"; Cq.var "u"; Cq.var "y"; Cq.var "v"; Cq.var "z" ]
    ~body:
      [
        Cq.atom (Cq.var "x") (Cq.cst Vocab.rdf_type) (Cq.var "u");
        Cq.atom (Cq.var "y") (Cq.cst Vocab.rdf_type) (Cq.var "v");
        Cq.atom (Cq.var "x") (Cq.cst masters_degree_from) (Cq.cst u0);
        Cq.atom (Cq.var "y") (Cq.cst doctoral_degree_from) (Cq.cst u0);
        Cq.atom (Cq.var "x") (Cq.cst member_of) (Cq.var "z");
        Cq.atom (Cq.var "y") (Cq.cst member_of) (Cq.var "z");
      ]

(* {t1,t3}, {t3,t5}, {t2,t4}, {t4,t6} with 0-based indices. *)
let example1_cover =
  Cover.make ~n_atoms:6 [ [ 0; 2 ]; [ 2; 4 ]; [ 1; 3 ]; [ 3; 5 ] ]

let d00 = dept 0 0

let prof00 = dept_entity 0 0 "FullProfessor" 0

let course00 = dept_entity 0 0 "Course" 0

let queries =
  let v = Cq.var and k = Cq.cst in
  [
    (* Q1: students of a known course (takers are only entailed to be
       Students through the takesCourse domain / class hierarchy) *)
    ( "Q1",
      Cq.make ~head:[ v "x" ]
        ~body:
          [
            Cq.atom (v "x") (k Vocab.rdf_type) (k student);
            Cq.atom (v "x") (k takes_course) (k course00);
          ] );
    (* Q2: students member of a department of a known university *)
    ( "Q2",
      Cq.make ~head:[ v "x"; v "d" ]
        ~body:
          [
            Cq.atom (v "x") (k Vocab.rdf_type) (k student);
            Cq.atom (v "x") (k member_of) (v "d");
            Cq.atom (v "d") (k sub_organization_of) (k u0);
          ] );
    (* Q3: publications of a known professor *)
    ( "Q3",
      Cq.make ~head:[ v "x" ]
        ~body:
          [
            Cq.atom (v "x") (k Vocab.rdf_type) (k publication);
            Cq.atom (v "x") (k publication_author) (k prof00);
          ] );
    (* Q4: professors working for a known department, with their names *)
    ( "Q4",
      Cq.make ~head:[ v "x"; v "n" ]
        ~body:
          [
            Cq.atom (v "x") (k Vocab.rdf_type) (k professor);
            Cq.atom (v "x") (k works_for) (k d00);
            Cq.atom (v "x") (k name_prop) (v "n");
          ] );
    (* Q5: persons member of a known department *)
    ( "Q5",
      Cq.make ~head:[ v "x" ]
        ~body:
          [
            Cq.atom (v "x") (k Vocab.rdf_type) (k person);
            Cq.atom (v "x") (k member_of) (k d00);
          ] );
    (* Q6: all students *)
    ( "Q6",
      Cq.make ~head:[ v "x" ]
        ~body:[ Cq.atom (v "x") (k Vocab.rdf_type) (k student) ] );
    (* Q7: students taking a course taught by a known professor *)
    ( "Q7",
      Cq.make ~head:[ v "x"; v "y" ]
        ~body:
          [
            Cq.atom (v "x") (k Vocab.rdf_type) (k student);
            Cq.atom (v "y") (k Vocab.rdf_type) (k course);
            Cq.atom (v "x") (k takes_course) (v "y");
            Cq.atom (k prof00) (k teacher_of) (v "y");
          ] );
    (* Q8: students of a university's departments, with email *)
    ( "Q8",
      Cq.make ~head:[ v "x"; v "e" ]
        ~body:
          [
            Cq.atom (v "x") (k Vocab.rdf_type) (k student);
            Cq.atom (v "x") (k member_of) (v "d");
            Cq.atom (v "d") (k sub_organization_of) (k u0);
            Cq.atom (v "x") (k email_address) (v "e");
          ] );
    (* Q9: advisor triangle *)
    ( "Q9",
      Cq.make ~head:[ v "x"; v "y"; v "z" ]
        ~body:
          [
            Cq.atom (v "x") (k Vocab.rdf_type) (k student);
            Cq.atom (v "y") (k Vocab.rdf_type) (k faculty);
            Cq.atom (v "z") (k Vocab.rdf_type) (k course);
            Cq.atom (v "x") (k advisor) (v "y");
            Cq.atom (v "y") (k teacher_of) (v "z");
            Cq.atom (v "x") (k takes_course) (v "z");
          ] );
    (* Q10: everyone with a degree from a known university *)
    ( "Q10",
      Cq.make ~head:[ v "x" ]
        ~body:[ Cq.atom (v "x") (k degree_from) (k u0) ] );
    (* Q11: how anything relates to a known professor — a variable in
       property position (rules R8/R9/R13) *)
    ( "Q11",
      Cq.make
        ~head:[ v "x"; v "p" ]
        ~body:[ Cq.atom (v "x") (v "p") (k prof00) ] );
    (* Q12: the subclasses of Person — a query over schema triples
       (rule R10 answers the entailed ones by instantiation) *)
    ( "Q12",
      Cq.make ~head:[ v "c" ]
        ~body:[ Cq.atom (v "c") (k Vocab.rdfs_subclassof) (k person) ] );
  ]
