open Refq_rdf
open Refq_query
open Refq_schema
open Refq_storage
module Rng = Refq_util.Splitmix64

let ns = "http://refq.org/dblp#"

let env = Namespace.add Namespace.default ~prefix:"dblp" ~uri:ns

let c name = Term.uri (ns ^ name)

(* Classes *)
let publication = c "Publication"
let article = c "Article"
let inproceedings = c "Inproceedings"
let book = c "Book"
let thesis = c "Thesis"
let phd_thesis = c "PhdThesis"
let masters_thesis = c "MastersThesis"
let person = c "Person"
let author_cls = c "Author"
let editor_cls = c "Editor"
let venue = c "Venue"
let journal = c "Journal"
let conference = c "Conference"

(* Properties *)
let creator = c "creator"
let authored_by = c "authoredBy"
let edited_by = c "editedBy"
let published_in = c "publishedIn"
let in_journal = c "inJournal"
let in_proceedings_of = c "inProceedingsOf"
let year = c "year"
let title = c "title"
let cites = c "cites"

let schema =
  Schema.of_list
    [
      Schema.subclass article publication;
      Schema.subclass inproceedings publication;
      Schema.subclass book publication;
      Schema.subclass thesis publication;
      Schema.subclass phd_thesis thesis;
      Schema.subclass masters_thesis thesis;
      Schema.subclass author_cls person;
      Schema.subclass editor_cls person;
      Schema.subclass journal venue;
      Schema.subclass conference venue;
      Schema.subproperty authored_by creator;
      Schema.subproperty edited_by creator;
      Schema.subproperty in_journal published_in;
      Schema.subproperty in_proceedings_of published_in;
      Schema.domain creator publication;
      Schema.range creator person;
      Schema.range authored_by author_cls;
      Schema.range edited_by editor_cls;
      Schema.domain published_in publication;
      Schema.range published_in venue;
      Schema.range in_journal journal;
      Schema.range in_proceedings_of conference;
      Schema.domain year publication;
      Schema.domain title publication;
      Schema.domain cites publication;
      Schema.range cites publication;
    ]

let schema_graph = Schema.to_graph schema

let author i = Term.uri (Printf.sprintf "%sauthor/A%d" ns i)
let journal_uri i = Term.uri (Printf.sprintf "%sjournal/J%d" ns i)
let conf_uri i = Term.uri (Printf.sprintf "%sconf/C%d" ns i)
let pub_uri i = Term.uri (Printf.sprintf "%spub/P%d" ns i)

(* Zipf-ish author pick: author ids are drawn with density ∝ 1/(rank+1),
   approximated by squaring a uniform draw. *)
let skewed_pick rng n =
  let x = Rng.float rng 1.0 in
  int_of_float (x *. x *. float_of_int n)

let generate ?(seed = 7L) ~scale () =
  if scale <= 0 then invalid_arg "Dblp.generate: scale must be positive";
  let store = Store.create () in
  Store.add_graph store schema_graph;
  let rng = Rng.create seed in
  let n_pubs = scale * 100 in
  let n_authors = max 10 (n_pubs / 3) in
  let n_journals = max 3 (n_pubs / 120) in
  let n_confs = max 5 (n_pubs / 60) in
  let add s p o = Store.add store s p o in
  for j = 0 to n_journals - 1 do
    add (journal_uri j) Vocab.rdf_type journal;
    add (journal_uri j) title (Term.literal (Printf.sprintf "Journal %d" j))
  done;
  for k = 0 to n_confs - 1 do
    add (conf_uri k) Vocab.rdf_type conference;
    add (conf_uri k) title (Term.literal (Printf.sprintf "Conference %d" k))
  done;
  (* A third of the authors are also editors somewhere. *)
  for a = 0 to n_authors - 1 do
    if Rng.int rng 3 = 0 then add (author a) Vocab.rdf_type editor_cls
  done;
  for i = 0 to n_pubs - 1 do
    let p = pub_uri i in
    let kind = Rng.int rng 10 in
    let cls, venue_edge =
      if kind < 4 then (article, Some (in_journal, journal_uri (Rng.int rng n_journals)))
      else if kind < 8 then
        (inproceedings, Some (in_proceedings_of, conf_uri (Rng.int rng n_confs)))
      else if kind = 8 then (book, None)
      else if Rng.bool rng then (phd_thesis, None)
      else (masters_thesis, None)
    in
    add p Vocab.rdf_type cls;
    add p title (Term.literal (Printf.sprintf "Title %d" i));
    add p year
      (Term.typed_literal
         (string_of_int (1980 + Rng.int rng 45))
         Vocab.xsd_integer);
    (match venue_edge with
    | Some (prop, v) -> add p prop v
    | None -> ());
    for _ = 1 to Rng.int_in rng 1 4 do
      add p authored_by (author (skewed_pick rng n_authors))
    done;
    (* Citations to earlier publications only (acyclic). *)
    if i > 0 then
      for _ = 1 to Rng.int rng 4 do
        add p cites (pub_uri (Rng.int rng i))
      done
  done;
  store

let a0 = author 0

let queries =
  let v = Cq.var and k = Cq.cst in
  [
    (* publications (of any kind) created by the most prolific author *)
    ( "D1",
      Cq.make ~head:[ v "x" ]
        ~body:
          [
            Cq.atom (v "x") (k Vocab.rdf_type) (k publication);
            Cq.atom (v "x") (k creator) (k a0);
          ] );
    (* venue and year of theses *)
    ( "D2",
      Cq.make ~head:[ v "x"; v "y" ]
        ~body:
          [
            Cq.atom (v "x") (k Vocab.rdf_type) (k thesis);
            Cq.atom (v "x") (k year) (v "y");
          ] );
    (* co-authorship pairs through a shared publication *)
    ( "D3",
      Cq.make ~head:[ v "a"; v "b" ]
        ~body:
          [
            Cq.atom (v "x") (k creator) (v "a");
            Cq.atom (v "x") (k creator) (v "b");
            Cq.atom (v "x") (k Vocab.rdf_type) (k publication);
          ] );
    (* citations from venue-published work to a known author's work *)
    ( "D4",
      Cq.make ~head:[ v "x"; v "y" ]
        ~body:
          [
            Cq.atom (v "x") (k published_in) (v "w");
            Cq.atom (v "x") (k cites) (v "y");
            Cq.atom (v "y") (k creator) (k a0);
          ] );
    (* people and the venues they published in *)
    ( "D5",
      Cq.make ~head:[ v "a"; v "w" ]
        ~body:
          [
            Cq.atom (v "x") (k creator) (v "a");
            Cq.atom (v "x") (k published_in) (v "w");
            Cq.atom (v "w") (k Vocab.rdf_type) (k venue);
          ] );
  ]
