(** DBLP-style synthetic bibliographic workload.

    The demonstration includes DBLP as a real-data scenario; offline we
    generate a bibliographic graph with the same shape: a publication-type
    hierarchy, a venue hierarchy, author sets with skewed productivity and
    a citation graph. Deterministic for a given [(seed, scale)]. *)

open Refq_rdf
open Refq_query
open Refq_schema
open Refq_storage

val ns : string

val env : Namespace.t
(** Binds [dblp:]. *)

val schema : Schema.t

val schema_graph : Graph.t

val generate : ?seed:int64 -> scale:int -> unit -> Store.t
(** [scale] is the number of publications divided by 100 (so [scale:10]
    yields about 1,000 publications plus authors, venues and citations). *)

val queries : (string * Cq.t) list
