(** Random conjunctive queries over a workload schema.

    The demo lets the audience propose their own queries; this generator
    stands in for them at benchmark scale: deterministic, connected CQs of
    configurable size over a store's actual vocabulary (classes with
    instances, properties with triples, constants sampled from the data),
    in the three standard shapes — stars, chains and mixtures. Used by the
    robustness experiment (E16) and as a stress source for GCov. *)

open Refq_query
open Refq_storage

type shape =
  | Star  (** all atoms share the central subject variable *)
  | Chain  (** atom i's object is atom i+1's subject *)
  | Mixed  (** random attachment to any previously used variable *)

val generate :
  ?seed:int64 ->
  ?max_atoms:int ->
  ?constant_probability:float ->
  Store.t ->
  count:int ->
  (string * Cq.t) list
(** [generate store ~count] builds [count] named queries ("R1", "R2", ...)
    against [store]'s vocabulary. Each query is connected, safe, has
    1–[max_atoms] atoms (default 5) and projects every non-fresh variable.
    [constant_probability] (default 0.35) controls how often an object
    position holds a data constant instead of a variable. Deterministic
    for a given [(seed, store)]. *)
