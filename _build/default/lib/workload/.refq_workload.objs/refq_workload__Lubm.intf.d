lib/workload/lubm.mli: Cover Cq Graph Namespace Refq_query Refq_rdf Refq_schema Refq_storage Schema Store Term
