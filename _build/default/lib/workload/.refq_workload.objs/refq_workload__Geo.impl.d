lib/workload/geo.ml: Cq Namespace Printf Refq_query Refq_rdf Refq_schema Refq_storage Refq_util Schema Store Term Vocab
