lib/workload/query_gen.ml: Array Cq Hashtbl List Option Printf Refq_query Refq_rdf Refq_storage Refq_util Seq Store Term Vocab
