lib/workload/query_gen.mli: Cq Refq_query Refq_storage Store
