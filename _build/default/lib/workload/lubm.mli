(** LUBM-style synthetic workload.

    The paper's Example 1 runs on the LUBM benchmark [11]; the original
    100M-triple dataset is not available offline, so this generator
    reproduces the LUBM {e schema shape} (the class and property
    hierarchies, domains and ranges of univ-bench) and its data
    distributions (types vastly outnumber degree edges; members cluster by
    department) at a configurable scale. Reformulation sizes depend only on
    the schema, and the relative performance of UCQ / SCQ / JUCQ depends on
    these distributions, so the substitution preserves the behaviours the
    paper demonstrates (see DESIGN.md §4).

    Generation is fully deterministic for a given [(seed, scale)]. *)

open Refq_rdf
open Refq_query
open Refq_schema
open Refq_storage

val ns : string
(** Vocabulary namespace of the generated data. *)

val env : Namespace.t
(** Prefix environment binding [ub:] to {!ns} (plus the defaults). *)

val schema : Schema.t
(** The univ-bench-style RDFS constraints (43 classes / 25 properties
    shaped like LUBM's). *)

val schema_graph : Graph.t

val university : int -> Term.t
(** [university i] is the URI of the [i]-th university,
    [http://www.Univ<i>.edu] — Example 1 queries [Univ532]-style URIs. *)

val generate : ?seed:int64 -> scale:int -> unit -> Store.t
(** [generate ~scale ()] builds a store holding [scale] universities
    (roughly 4,000–6,000 triples each) {e plus} the schema triples. Only
    most-specific classes and properties are asserted — the implicit
    triples are left to be derived, as in the paper's setting. *)

val example1_query : Cq.t
(** The six-atom query of Example 1 (over university 0):
    {v
    q(x, u, y, v, z) :- x rdf:type u, y rdf:type v,
                        x ub:mastersDegreeFrom U0,
                        y ub:doctoralDegreeFrom U0,
                        x ub:memberOf z, y ub:memberOf z
    v} *)

val example1_cover : Cover.t
(** The paper's hand-picked best cover
    [{t1,t3} {t3,t5} {t2,t4} {t4,t6}] (0-based internally). *)

val queries : (string * Cq.t) list
(** A named query workload (Q1–Q10, LUBM-inspired, adapted to the RDFS
    setting), used by experiments E3–E6. *)
