(** Query answering strategies — the alternatives the demonstration
    compares.

    [Saturation] is the Sat technique; the [Ref] strategies differ only in
    the query cover they reformulate through (Section 5: "our demo
    represents them by the corresponding covers"); [Gcov] searches the
    cover space with the cost model; [Datalog] is the Dat technique. *)

open Refq_query

type t =
  | Saturation  (** evaluate [q] against [G∞] *)
  | Ucq  (** one-fragment cover: classical CQ-to-UCQ reformulation [9] *)
  | Scq  (** singleton cover: semi-conjunctive queries [15] *)
  | Jucq of Cover.t  (** a user-chosen cover *)
  | Gcov  (** greedy cost-based cover selection [5] *)
  | Datalog  (** encode to Datalog, evaluate bottom-up (LogicBlox stand-in) *)

val name : t -> string

val pp : t Fmt.t

val all_fixed : t list
(** The strategies that need no user input: [Saturation; Ucq; Scq; Gcov;
    Datalog]. *)

val of_string : string -> (t, string) result
(** Parses ["sat"], ["ucq"], ["scq"], ["gcov"], ["datalog"] (case
    insensitive). [Jucq] covers cannot be parsed from a name. *)
