lib/core/version.ml:
