lib/core/gcov.mli: Cardinality Closure Cost_model Cover Cq Refq_cost Refq_query Refq_reform Refq_schema
