lib/core/gcov.ml: Array Cost_model Cover Cq Float Fun Hashtbl List Logs Option Reformulate Refq_cost Refq_query Refq_reform
