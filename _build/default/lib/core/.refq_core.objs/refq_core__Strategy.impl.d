lib/core/strategy.ml: Cover Fmt Printf Refq_query String
