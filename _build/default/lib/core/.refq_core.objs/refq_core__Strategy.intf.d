lib/core/strategy.mli: Cover Fmt Refq_query
