open Refq_query

type t =
  | Saturation
  | Ucq
  | Scq
  | Jucq of Cover.t
  | Gcov
  | Datalog

let name = function
  | Saturation -> "sat"
  | Ucq -> "ucq"
  | Scq -> "scq"
  | Jucq _ -> "jucq"
  | Gcov -> "gcov"
  | Datalog -> "datalog"

let pp ppf = function
  | Jucq cover -> Fmt.pf ppf "jucq%a" Cover.pp cover
  | s -> Fmt.string ppf (name s)

let all_fixed = [ Saturation; Ucq; Scq; Gcov; Datalog ]

let of_string s =
  match String.lowercase_ascii s with
  | "sat" | "saturation" -> Ok Saturation
  | "ucq" -> Ok Ucq
  | "scq" -> Ok Scq
  | "gcov" -> Ok Gcov
  | "dat" | "datalog" -> Ok Datalog
  | other -> Error (Printf.sprintf "unknown strategy %S" other)
