open Refq_rdf
open Refq_query
open Refq_schema
open Refq_storage
open Refq_engine
open Refq_cost
open Refq_reform

module Endpoint = struct
  type t = {
    name : string;
    store : Store.t;
    card_env : Cardinality.env;
    limit : int option;
  }

  let name e = e.name
  let store e = e.store
  let limit e = e.limit
end

type t = {
  dict : Dictionary.t;
  endpoints : Endpoint.t list;
  closure : Closure.t;
  (* Statistics of the (hypothetical) union, used by GCov's cost model —
     in a real deployment these would come from endpoint service
     descriptions. *)
  union_env : Cardinality.env;
  mutable union_sat_env : Cardinality.env option;
}

let of_graphs specs =
  if specs = [] then invalid_arg "Federation.of_graphs: no endpoints";
  let dict = Dictionary.create () in
  let union_store = Store.create ~dictionary:dict () in
  let endpoints =
    List.map
      (fun (name, graph, limit) ->
        let store = Store.create ~dictionary:dict () in
        Store.add_graph store graph;
        Store.add_graph union_store graph;
        {
          Endpoint.name;
          store;
          card_env = Cardinality.make_env store;
          limit;
        })
      specs
  in
  let schema =
    List.fold_left
      (fun acc e ->
        Graph.fold
          (fun t acc ->
            match Schema.constr_of_triple t with
            | Some c -> Schema.add c acc
            | None -> acc)
          (Store.to_graph e.Endpoint.store)
          acc)
      Schema.empty endpoints
  in
  {
    dict;
    endpoints;
    closure = Closure.of_schema schema;
    union_env = Cardinality.make_env union_store;
    union_sat_env = None;
  }

let endpoints fed = fed.endpoints

let closure fed = fed.closure

let dictionary fed = fed.dict

type strategy =
  | Ucq
  | Scq
  | Cover of Cover.t
  | Gcov

(* Send one fragment UCQ to every endpoint; each endpoint evaluates it
   against its own (non-saturated) triples and applies its answer limit;
   the federation unions the results. *)
let eval_fragment fed (f : Jucq.fragment) =
  let cols = Array.of_list f.Jucq.out in
  let result = Relation.create ~cols in
  let seen = Hashtbl.create 64 in
  List.iter
    (fun e ->
      let r = Evaluator.ucq e.Endpoint.card_env ~cols f.Jucq.ucq in
      let r =
        match e.Endpoint.limit with
        | Some n -> Relation.truncate r n
        | None -> r
      in
      Relation.iter_rows r (fun row ->
          if not (Hashtbl.mem seen row) then begin
            let key = Array.copy row in
            Hashtbl.add seen key ();
            Relation.add_row result key
          end))
    fed.endpoints;
  result

let project_head fed head joined =
  let head = Array.of_list head in
  let out_cols =
    Array.mapi
      (fun i pat ->
        match pat with Cq.Var v -> v | Cq.Cst _ -> Printf.sprintf "_k%d" i)
      head
  in
  let result = Relation.create ~cols:out_cols in
  let seen = Hashtbl.create 64 in
  let out_row = Array.make (Array.length head) 0 in
  Relation.iter_rows joined (fun row ->
      Array.iteri
        (fun i pat ->
          match pat with
          | Cq.Var v ->
            out_row.(i) <- row.(Option.get (Relation.col_index joined v))
          | Cq.Cst t -> out_row.(i) <- Dictionary.encode fed.dict t)
        head;
      if not (Hashtbl.mem seen out_row) then begin
        let key = Array.copy out_row in
        Hashtbl.add seen key ();
        Relation.add_row result key
      end);
  result

let answer_ref ?profile ?(strategy = Scq) ?max_disjuncts fed q =
  let n_atoms = List.length q.Cq.body in
  let cover =
    match strategy with
    | Ucq -> Refq_query.Cover.one_fragment ~n_atoms
    | Scq -> Refq_query.Cover.singleton ~n_atoms
    | Cover c -> c
    | Gcov ->
      (* The greedy search prices covers with the union statistics (in a
         real deployment, endpoint service descriptions). *)
      let trace =
        Refq_core.Gcov.search ?profile ?max_disjuncts fed.union_env
          fed.closure q
      in
      trace.Refq_core.Gcov.chosen
  in
  let jucq = Reformulate.cover_to_jucq ?profile ?max_disjuncts fed.closure q cover in
  let fragments = List.map (eval_fragment fed) jucq.Jucq.fragments in
  if List.exists (fun r -> Relation.cardinality r = 0) fragments then
    project_head fed jucq.Jucq.head
      (Relation.create ~cols:[||])
  else begin
    let joinable = List.filter (fun r -> Relation.arity r > 0) fragments in
    let joined =
      match Evaluator.join_order joinable with
      | [] ->
        let r = Relation.create ~cols:[||] in
        Relation.add_row r [||];
        r
      | first :: rest -> List.fold_left Evaluator.join first rest
    in
    project_head fed jucq.Jucq.head joined
  end

let answer_local_sat fed q =
  let cols =
    Array.of_list (List.mapi (fun i _ -> Printf.sprintf "c%d" i) q.Cq.head)
  in
  let result = Relation.create ~cols in
  let seen = Hashtbl.create 64 in
  List.iter
    (fun e ->
      (* Each endpoint saturates only its own triples with its own
         constraints — entailments spanning endpoints are lost. *)
      let sat = Refq_saturation.Saturate.store e.Endpoint.store in
      let env = Cardinality.make_env sat in
      let r = Evaluator.cq env ~cols q in
      let r =
        match e.Endpoint.limit with
        | Some n -> Relation.truncate r n
        | None -> r
      in
      Relation.iter_rows r (fun row ->
          if not (Hashtbl.mem seen row) then begin
            let key = Array.copy row in
            Hashtbl.add seen key ();
            Relation.add_row result key
          end))
    fed.endpoints;
  result

let answer_centralized fed q =
  let env =
    match fed.union_sat_env with
    | Some env -> env
    | None ->
      let sat =
        Refq_saturation.Saturate.store fed.union_env.Cardinality.store
      in
      let env = Cardinality.make_env sat in
      fed.union_sat_env <- Some env;
      env
  in
  let cols =
    Array.of_list (List.mapi (fun i _ -> Printf.sprintf "c%d" i) q.Cq.head)
  in
  Evaluator.cq env ~cols q

let decode fed r = Relation.decode_rows fed.dict r
