lib/federation/federation.mli: Closure Cover Cq Dictionary Graph Refq_engine Refq_query Refq_rdf Refq_reform Refq_schema Refq_storage Relation Store Term
