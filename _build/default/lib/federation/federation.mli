(** Federations of independent RDF endpoints.

    Section 1 of the paper motivates reformulation with distributed data:
    "Semantic Web data is often split across independent sources, typically
    called RDF endpoints. Data in each such independent source may or may
    not be saturated; further, implicit facts may be due to the presence of
    one fact in one endpoint, and a constraint in another. Computing the
    complete (distributed) set of consequences in this setting is
    unfeasible, especially considering that such sources often return only
    restricted answers (e.g., the first 50)."

    This module simulates that setting: a federation is a set of endpoints
    (each a store, with an optional per-query answer limit). Three
    answering techniques are provided:

    - {!answer_ref}: the reformulation approach — rewrite w.r.t. the
      {e federation-wide} schema, send each cover-fragment UCQ to every
      endpoint (each applies its own answer limit), union, and join
      locally. No endpoint needs to be saturated.
    - {!answer_local_sat}: the best a saturation-based deployment can do
      without centralizing data — saturate each endpoint {e independently}
      and union the per-endpoint answers of the original query. It misses
      answers whose derivation spans endpoints (a fact here, a constraint
      there) and answers whose joins span endpoints.
    - {!answer_centralized}: the hypothetical ground truth — union all
      data, saturate, evaluate. Used as the reference in tests and
      benchmarks.

    Endpoints share one dictionary so that relations can be combined. *)

open Refq_rdf
open Refq_query
open Refq_schema
open Refq_storage
open Refq_engine

module Endpoint : sig
  type t

  val name : t -> string

  val store : t -> Store.t

  val limit : t -> int option
  (** Maximum number of (distinct) answers this endpoint returns per
      query sent to it; [None] = unrestricted. *)
end

type t

val of_graphs : (string * Graph.t * int option) list -> t
(** [of_graphs [(name, graph, limit); ...]] builds a federation. *)

val endpoints : t -> Endpoint.t list

val closure : t -> Closure.t
(** The federation-wide schema closure (union of the endpoints' RDFS
    triples) — the constraints available to the reformulation side. *)

val dictionary : t -> Dictionary.t

type strategy =
  | Ucq
  | Scq
  | Cover of Cover.t
  | Gcov

val answer_ref :
  ?profile:Refq_reform.Profiles.t ->
  ?strategy:strategy ->
  ?max_disjuncts:int ->
  t ->
  Cq.t ->
  Relation.t
(** Reformulation-based federated answering. Fragments are evaluated
    endpoint-locally and unioned, so a fragment only matches triples
    co-located on one endpoint. With the default [Scq] strategy every
    fragment is a single triple pattern, hence evaluation is {e exact}
    w.r.t. the union graph (each explicit triple lives on some endpoint);
    this is the classical per-triple-pattern federated decomposition.
    Larger covers ([Gcov], [Cover]) trade that guarantee for smaller
    intermediate transfers and remain exact when fragment-mates are
    co-located (e.g. subject-partitioned data).
    @raise Refq_reform.Reformulate.Too_large like the local pipeline. *)

val answer_local_sat : t -> Cq.t -> Relation.t
(** Per-endpoint saturation + per-endpoint evaluation of the original
    query, unioned (with each endpoint's limit applied). Incomplete by
    construction — the point of the experiment. *)

val answer_centralized : t -> Cq.t -> Relation.t
(** Ground truth: evaluate over the saturation of the unioned data. *)

val decode : t -> Relation.t -> Term.t list list
