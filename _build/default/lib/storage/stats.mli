(** Database statistics.

    These serve two purposes from the paper: (a) the cost model's
    cardinality estimates (per-property counts and distinct subject/object
    counts, per-class instance counts), and (b) the demonstration's first
    scenario step — visualizing value distributions for subject, property
    and object positions and for attribute pairs. *)

type prop_stat = {
  count : int;  (** triples carrying this property *)
  distinct_s : int;
  distinct_o : int;
}

type t

val compute : Store.t -> t
(** One pass over the store's indexes. *)

val n_triples : t -> int

val n_distinct_subjects : t -> int

val n_distinct_properties : t -> int

val n_distinct_objects : t -> int

val prop_stat : t -> int -> prop_stat option
(** Statistics of a property id; [None] if the property never occurs. *)

val class_count : t -> int -> int
(** Number of explicit [rdf:type] assertions whose object is the given
    class id; 0 when unseen. *)

val top_properties : t -> k:int -> (int * int) list
(** [(property id, triple count)], most frequent first. *)

val top_classes : t -> k:int -> (int * int) list

val top_subjects : t -> k:int -> (int * int) list

val top_objects : t -> k:int -> (int * int) list

val top_po_pairs : t -> k:int -> ((int * int) * int) list
(** Attribute-pair distribution: [(property, object)] pairs. *)

val pp : Dictionary.t -> t Fmt.t
(** Human-readable summary, decoding ids through the dictionary. *)
