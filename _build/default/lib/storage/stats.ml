open Refq_rdf

type prop_stat = {
  count : int;
  distinct_s : int;
  distinct_o : int;
}

type t = {
  n_triples : int;
  n_distinct_subjects : int;
  n_distinct_properties : int;
  n_distinct_objects : int;
  props : (int, prop_stat) Hashtbl.t;
  classes : (int, int) Hashtbl.t;
  subj_counts : (int, int) Hashtbl.t;
  obj_counts : (int, int) Hashtbl.t;
  po_counts : (int * int, int) Hashtbl.t;
}

let bump tbl k =
  Hashtbl.replace tbl k (1 + Option.value ~default:0 (Hashtbl.find_opt tbl k))

let compute store =
  Store.freeze store;
  let rdf_type = Store.find_term store Vocab.rdf_type in
  let props_acc : (int, int * (int, unit) Hashtbl.t * (int, unit) Hashtbl.t) Hashtbl.t =
    Hashtbl.create 64
  in
  let classes = Hashtbl.create 64 in
  let subj_counts = Hashtbl.create 1024 in
  let obj_counts = Hashtbl.create 1024 in
  let po_counts = Hashtbl.create 1024 in
  Store.iter_all store (fun s p o ->
      bump subj_counts s;
      bump obj_counts o;
      bump po_counts (p, o);
      (match Hashtbl.find_opt props_acc p with
      | Some (n, ss, os) ->
        Hashtbl.replace ss s ();
        Hashtbl.replace os o ();
        Hashtbl.replace props_acc p (n + 1, ss, os)
      | None ->
        let ss = Hashtbl.create 64 and os = Hashtbl.create 64 in
        Hashtbl.replace ss s ();
        Hashtbl.replace os o ();
        Hashtbl.replace props_acc p (1, ss, os));
      match rdf_type with
      | Some ty when p = ty -> bump classes o
      | Some _ | None -> ());
  let props = Hashtbl.create (Hashtbl.length props_acc) in
  Hashtbl.iter
    (fun p (n, ss, os) ->
      Hashtbl.replace props p
        { count = n; distinct_s = Hashtbl.length ss; distinct_o = Hashtbl.length os })
    props_acc;
  {
    n_triples = Store.size store;
    n_distinct_subjects = Hashtbl.length subj_counts;
    n_distinct_properties = Hashtbl.length props;
    n_distinct_objects = Hashtbl.length obj_counts;
    props;
    classes;
    subj_counts;
    obj_counts;
    po_counts;
  }

let n_triples st = st.n_triples
let n_distinct_subjects st = st.n_distinct_subjects
let n_distinct_properties st = st.n_distinct_properties
let n_distinct_objects st = st.n_distinct_objects

let prop_stat st p = Hashtbl.find_opt st.props p

let class_count st c = Option.value ~default:0 (Hashtbl.find_opt st.classes c)

let top tbl ~k =
  let all = Hashtbl.fold (fun key n acc -> (key, n) :: acc) tbl [] in
  let sorted =
    List.sort (fun (_, n1) (_, n2) -> Int.compare n2 n1) all
  in
  List.filteri (fun i _ -> i < k) sorted

let top_properties st ~k =
  let counts = Hashtbl.create 16 in
  Hashtbl.iter (fun p ps -> Hashtbl.replace counts p ps.count) st.props;
  top counts ~k

let top_classes st ~k = top st.classes ~k
let top_subjects st ~k = top st.subj_counts ~k
let top_objects st ~k = top st.obj_counts ~k
let top_po_pairs st ~k = top st.po_counts ~k

let pp dict ppf st =
  let term id = Dictionary.decode dict id in
  Fmt.pf ppf "@[<v>triples: %d@,distinct subjects: %d@,distinct properties: %d@,distinct objects: %d@,"
    st.n_triples st.n_distinct_subjects st.n_distinct_properties
    st.n_distinct_objects;
  Fmt.pf ppf "@,top properties:@,";
  List.iter
    (fun (p, n) -> Fmt.pf ppf "  %8d  %a@," n Term.pp (term p))
    (top_properties st ~k:10);
  Fmt.pf ppf "@,top classes:@,";
  List.iter
    (fun (c, n) -> Fmt.pf ppf "  %8d  %a@," n Term.pp (term c))
    (top_classes st ~k:10);
  Fmt.pf ppf "@]"
