lib/storage/stats.mli: Dictionary Fmt Store
