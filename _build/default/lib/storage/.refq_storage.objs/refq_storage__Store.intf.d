lib/storage/store.mli: Dictionary Graph Refq_rdf Term Triple
