lib/storage/dictionary.mli: Refq_rdf Term
