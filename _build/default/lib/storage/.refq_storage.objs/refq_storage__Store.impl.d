lib/storage/store.ml: Array Dictionary Fun Graph Hashtbl Int Printf Refq_rdf Refq_util String Term Triple
