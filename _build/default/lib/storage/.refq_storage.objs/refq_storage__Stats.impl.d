lib/storage/stats.ml: Dictionary Fmt Hashtbl Int List Option Refq_rdf Store Term Vocab
