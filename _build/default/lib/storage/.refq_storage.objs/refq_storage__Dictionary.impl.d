lib/storage/dictionary.ml: Hashtbl Printf Refq_rdf Refq_util Term
