open Refq_rdf

type t = {
  by_term : (Term.t, int) Hashtbl.t;
  by_id : Term.t Refq_util.Vec.t;
}

let create ?(capacity = 1024) () =
  {
    by_term = Hashtbl.create capacity;
    by_id = Refq_util.Vec.create ~capacity ();
  }

let encode d t =
  match Hashtbl.find_opt d.by_term t with
  | Some id -> id
  | None ->
    let id = Refq_util.Vec.length d.by_id in
    Hashtbl.add d.by_term t id;
    Refq_util.Vec.push d.by_id t;
    id

let find d t = Hashtbl.find_opt d.by_term t

let decode d id =
  if id < 0 || id >= Refq_util.Vec.length d.by_id then
    invalid_arg (Printf.sprintf "Dictionary.decode: unallocated id %d" id);
  Refq_util.Vec.get d.by_id id

let size d = Refq_util.Vec.length d.by_id

let iter f d = Refq_util.Vec.iteri f d.by_id
