(* Tests for the utility layer: vectors and the deterministic PRNG. *)

module Vec = Refq_util.Vec
module Int_vec = Refq_util.Int_vec
module Rng = Refq_util.Splitmix64

let test_vec_basics () =
  let v = Vec.create () in
  Alcotest.(check bool) "empty" true (Vec.is_empty v);
  for i = 0 to 99 do
    Vec.push v i
  done;
  Alcotest.(check int) "length" 100 (Vec.length v);
  Alcotest.(check int) "get" 42 (Vec.get v 42);
  Vec.set v 42 (-1);
  Alcotest.(check int) "set" (-1) (Vec.get v 42);
  Alcotest.(check (option int)) "pop" (Some 99) (Vec.pop v);
  Alcotest.(check int) "after pop" 99 (Vec.length v);
  Vec.clear v;
  Alcotest.(check int) "cleared" 0 (Vec.length v);
  Alcotest.(check (option int)) "pop empty" None (Vec.pop v)

let test_vec_bounds () =
  let v = Vec.of_list [ 1; 2; 3 ] in
  (match Vec.get v 3 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "out of bounds get");
  match Vec.set v (-1) 0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "out of bounds set"

let test_vec_conversions () =
  let v = Vec.of_list [ 3; 1; 2 ] in
  Alcotest.(check (list int)) "to_list" [ 3; 1; 2 ] (Vec.to_list v);
  Vec.sort Int.compare v;
  Alcotest.(check (list int)) "sorted" [ 1; 2; 3 ] (Vec.to_list v);
  let doubled = Vec.map (fun x -> 2 * x) v in
  Alcotest.(check (list int)) "map" [ 2; 4; 6 ] (Vec.to_list doubled);
  Alcotest.(check int) "fold" 6 (Vec.fold_left ( + ) 0 v);
  Alcotest.(check bool) "exists" true (Vec.exists (fun x -> x = 2) v);
  Alcotest.(check bool) "not exists" false (Vec.exists (fun x -> x = 9) v)

let test_vec_growth () =
  (* Push enough to force several reallocation rounds. *)
  let v = Vec.create ~capacity:1 () in
  for i = 0 to 10_000 do
    Vec.push v (string_of_int i)
  done;
  Alcotest.(check string) "first survives growth" "0" (Vec.get v 0);
  Alcotest.(check string) "last" "10000" (Vec.get v 10_000)

let test_int_vec () =
  let v = Int_vec.create ~capacity:2 () in
  for i = 0 to 999 do
    Int_vec.push v (i * i)
  done;
  Alcotest.(check int) "length" 1000 (Int_vec.length v);
  Alcotest.(check int) "get" (25 * 25) (Int_vec.get v 25);
  Int_vec.set v 0 7;
  Alcotest.(check int) "set" 7 (Int_vec.get v 0);
  let sum = ref 0 in
  Int_vec.iter (fun x -> sum := !sum + x) v;
  Alcotest.(check bool) "iter covers all" true (!sum > 0);
  Int_vec.append_array v [| 1; 2; 3 |];
  Alcotest.(check int) "append_array" 1003 (Int_vec.length v);
  let buf = Array.make 3 0 in
  Int_vec.blit_to v 1000 buf 0 3;
  Alcotest.(check (array int)) "blit" [| 1; 2; 3 |] buf;
  (match Int_vec.blit_to v 1002 buf 0 3 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "blit past end");
  Int_vec.clear v;
  Alcotest.(check int) "clear" 0 (Int_vec.length v)

let test_int_vec_roundtrip () =
  let a = Array.init 257 (fun i -> i - 128) in
  Alcotest.(check (array int)) "of/to array" a (Int_vec.to_array (Int_vec.of_array a))

let test_rng_determinism () =
  let g1 = Rng.create 123L and g2 = Rng.create 123L in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.next g1) (Rng.next g2)
  done;
  let g3 = Rng.create 124L in
  Alcotest.(check bool) "different seed differs" true (Rng.next g1 <> Rng.next g3)

let test_rng_known_values () =
  (* Reference values from the SplitMix64 reference implementation with
     seed 0: first outputs of the Steele-Lea-Flood generator. *)
  let g = Rng.create 0L in
  Alcotest.(check int64) "first" 0xE220A8397B1DCDAFL (Rng.next g);
  Alcotest.(check int64) "second" 0x6E789E6AA1B965F4L (Rng.next g)

let test_rng_bounds () =
  let g = Rng.create 7L in
  for _ = 1 to 1000 do
    let x = Rng.int g 10 in
    Alcotest.(check bool) "int in range" true (x >= 0 && x < 10);
    let y = Rng.int_in g 5 8 in
    Alcotest.(check bool) "int_in range" true (y >= 5 && y <= 8);
    let f = Rng.float g 2.5 in
    Alcotest.(check bool) "float in range" true (f >= 0.0 && f < 2.5)
  done;
  (match Rng.int g 0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "bound 0");
  match Rng.int_in g 3 2 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "empty range"

let test_rng_pick_shuffle () =
  let g = Rng.create 9L in
  let a = [| 1; 2; 3; 4; 5 |] in
  for _ = 1 to 50 do
    Alcotest.(check bool) "pick member" true (Array.mem (Rng.pick g a) a)
  done;
  let b = Array.copy a in
  Rng.shuffle g b;
  Alcotest.(check (list int)) "shuffle is a permutation" (Array.to_list a)
    (List.sort Int.compare (Array.to_list b));
  match Rng.pick g [||] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "pick from empty"

let test_rng_split_independent () =
  let g = Rng.create 1L in
  let child = Rng.split g in
  (* The child stream must not equal the parent's continuation. *)
  let c = List.init 10 (fun _ -> Rng.next child) in
  let p = List.init 10 (fun _ -> Rng.next g) in
  Alcotest.(check bool) "independent streams" true (c <> p)

let prop_rng_uniformish =
  QCheck2.Test.make ~name:"Rng.int roughly uniform" ~count:20
    QCheck2.Gen.(int_range 1 1000)
    (fun seed ->
      let g = Rng.create (Int64.of_int seed) in
      let counts = Array.make 4 0 in
      for _ = 1 to 4000 do
        let i = Rng.int g 4 in
        counts.(i) <- counts.(i) + 1
      done;
      Array.for_all (fun c -> c > 700 && c < 1300) counts)

let () =
  Alcotest.run "util"
    [
      ( "vec",
        [
          Alcotest.test_case "basics" `Quick test_vec_basics;
          Alcotest.test_case "bounds" `Quick test_vec_bounds;
          Alcotest.test_case "conversions" `Quick test_vec_conversions;
          Alcotest.test_case "growth" `Quick test_vec_growth;
        ] );
      ( "int_vec",
        [
          Alcotest.test_case "basics" `Quick test_int_vec;
          Alcotest.test_case "roundtrip" `Quick test_int_vec_roundtrip;
        ] );
      ( "splitmix64",
        [
          Alcotest.test_case "determinism" `Quick test_rng_determinism;
          Alcotest.test_case "known values" `Quick test_rng_known_values;
          Alcotest.test_case "bounds" `Quick test_rng_bounds;
          Alcotest.test_case "pick/shuffle" `Quick test_rng_pick_shuffle;
          Alcotest.test_case "split" `Quick test_rng_split_independent;
          QCheck_alcotest.to_alcotest prop_rng_uniformish;
        ] );
    ]
