(* Tests for cardinality estimation and the cost model. *)

open Refq_rdf
open Refq_query
open Refq_schema
open Refq_storage
open Refq_cost
open Refq_reform

let lubm_store = lazy (Refq_workload.Lubm.generate ~scale:1 ())

let lubm_env = lazy (Cardinality.make_env (Lazy.force lubm_store))

let lubm_closure =
  lazy (Closure.of_graph (Store.to_graph (Lazy.force lubm_store)))

let ub name = Term.uri (Refq_workload.Lubm.ns ^ name)

let test_atom_base_counts () =
  let env = Lazy.force lubm_env in
  let st = Cardinality.initial in
  (* Exact counts: a property atom's estimate with no bound variable is the
     property's triple count. *)
  let atom_takes =
    Cq.atom (Cq.var "x") (Cq.cst (ub "takesCourse")) (Cq.var "y")
  in
  let est = Cardinality.atom_extension env st atom_takes in
  let exact =
    Store.count_pattern (Lazy.force lubm_store)
      ~s:None
      ~p:(Store.find_term (Lazy.force lubm_store) (ub "takesCourse"))
      ~o:None
  in
  Alcotest.(check (float 0.01)) "exact base count" (float_of_int exact) est

let test_absent_constant_zero () =
  let env = Lazy.force lubm_env in
  let atom = Cq.atom (Cq.var "x") (Cq.cst (ub "noSuchProperty")) (Cq.var "y") in
  Alcotest.(check (float 0.0)) "absent is 0" 0.0
    (Cardinality.atom_extension env Cardinality.initial atom)

let test_bound_var_selectivity () =
  let env = Lazy.force lubm_env in
  let atom = Cq.atom (Cq.var "x") (Cq.cst (ub "takesCourse")) (Cq.var "y") in
  let st0 = Cardinality.initial in
  let unbound = Cardinality.atom_extension env st0 atom in
  (* After binding x elsewhere, the same atom must look much smaller. *)
  let st1 =
    Cardinality.extend env st0
      (Cq.atom (Cq.var "x") (Cq.cst (ub "memberOf")) (Cq.var "d"))
  in
  let bound = Cardinality.atom_extension env st1 atom in
  Alcotest.(check bool)
    (Printf.sprintf "bound (%f) < unbound (%f)" bound unbound)
    true (bound < unbound)

let test_cq_estimate_reasonable () =
  let env = Lazy.force lubm_env in
  let q =
    Cq.make ~head:[ Cq.var "x" ]
      ~body:
        [
          Cq.atom (Cq.var "x") (Cq.cst Vocab.rdf_type) (Cq.cst (ub "GraduateStudent"));
        ]
  in
  let est = Cardinality.cq env q in
  let actual =
    float_of_int
      (Refq_engine.Relation.cardinality (Refq_engine.Evaluator.cq env q))
  in
  (* A single-atom class lookup must be estimated exactly. *)
  Alcotest.(check (float 0.01)) "exact single-atom estimate" actual est

let test_cost_monotone_in_disjuncts () =
  (* More disjuncts must never be estimated cheaper (per-CQ overhead). *)
  let env = Lazy.force lubm_env in
  let cl = Lazy.force lubm_closure in
  let q1 =
    Cq.make ~head:[ Cq.var "x" ]
      ~body:[ Cq.atom (Cq.var "x") (Cq.cst Vocab.rdf_type) (Cq.cst (ub "Course")) ]
  in
  let q2 =
    Cq.make ~head:[ Cq.var "x" ]
      ~body:[ Cq.atom (Cq.var "x") (Cq.cst Vocab.rdf_type) (Cq.cst (ub "Work")) ]
  in
  let u1 = Reformulate.cq_to_ucq cl q1 in
  let u2 = Reformulate.cq_to_ucq cl q2 in
  Alcotest.(check bool) "Work has more disjuncts" true (Ucq.size u2 > Ucq.size u1);
  let c1 = (Cost_model.ucq env u1).Cost_model.cost in
  let c2 = (Cost_model.ucq env u2).Cost_model.cost in
  Alcotest.(check bool)
    (Printf.sprintf "cost(%f) grows with size (%f)" c1 c2)
    true (c2 > c1)

let test_infeasible_is_infinite () =
  let env = Lazy.force lubm_env in
  let cl = Lazy.force lubm_closure in
  let params = { Cost_model.default_params with Cost_model.max_disjuncts = 2 } in
  let q =
    Cq.make ~head:[ Cq.var "x" ]
      ~body:[ Cq.atom (Cq.var "x") (Cq.cst Vocab.rdf_type) (Cq.cst (ub "Person")) ]
  in
  let u = Reformulate.cq_to_ucq cl q in
  Alcotest.(check bool) "large union" true (Ucq.size u > 2);
  let e = Cost_model.ucq ~params env u in
  Alcotest.(check bool) "infinite cost" true (e.Cost_model.cost = infinity)

let test_jucq_cost_prefers_good_cover () =
  (* On Example 1 at a data size where evaluation dominates the per-CQ
     overhead, the cost model must rank the paper's cover below the SCQ
     (singleton) cover: that ordering is what GCov exploits. (On tiny
     data SCQ is genuinely competitive and the ranking flips.) *)
  let store = Refq_workload.Lubm.generate ~scale:3 () in
  let env = Cardinality.make_env store in
  let cl = Closure.of_graph (Store.to_graph store) in
  let q = Refq_workload.Lubm.example1_query in
  let jucq_of cover = Reformulate.cover_to_jucq cl q cover in
  let scq_cost =
    (Cost_model.jucq env
       (jucq_of (Cover.singleton ~n_atoms:6)))
      .Cost_model.cost
  in
  let paper_cost =
    (Cost_model.jucq env (jucq_of Refq_workload.Lubm.example1_cover))
      .Cost_model.cost
  in
  Alcotest.(check bool)
    (Printf.sprintf "paper cover (%.0f) < SCQ (%.0f)" paper_cost scq_cost)
    true
    (paper_cost < scq_cost)

let test_plan_explain_cq () =
  let env = Lazy.force lubm_env in
  let q = Refq_workload.Lubm.example1_query in
  let plan = Plan.explain_cq env q in
  Alcotest.(check int) "one step per atom" (List.length q.Cq.body)
    (List.length plan.Plan.steps);
  (* Cardinalities are the running product of the extensions. *)
  let running = ref 1.0 in
  List.iter
    (fun s ->
      running := !running *. s.Plan.extension;
      Alcotest.(check (float 0.01)) "running product" !running s.Plan.cardinality)
    plan.Plan.steps

let test_plan_explain_jucq () =
  let env = Lazy.force lubm_env in
  let cl = Lazy.force lubm_closure in
  let q = Refq_workload.Lubm.example1_query in
  let jucq =
    Reformulate.cover_to_jucq cl q Refq_workload.Lubm.example1_cover
  in
  let plan = Plan.explain_jucq env jucq in
  Alcotest.(check int) "four fragments" 4 (List.length plan.Plan.fragments);
  Alcotest.(check bool) "finite total" true
    (plan.Plan.est_total.Cost_model.cost < infinity);
  (* First fragment in join order is the smallest one. *)
  match plan.Plan.fragments with
  | first :: rest ->
    List.iter
      (fun f ->
        Alcotest.(check bool) "join order starts smallest" true
          (first.Plan.est_card <= f.Plan.est_card))
      rest
  | [] -> Alcotest.fail "empty plan"

let test_combine_equals_jucq () =
  let env = Lazy.force lubm_env in
  let cl = Lazy.force lubm_closure in
  let q = Refq_workload.Lubm.example1_query in
  let j = Reformulate.cover_to_jucq cl q Refq_workload.Lubm.example1_cover in
  let via_jucq = Cost_model.jucq env j in
  let via_combine =
    Cost_model.combine (List.map (Cost_model.fragment_profile env) j.Jucq.fragments)
  in
  Alcotest.(check (float 0.001)) "cost" via_jucq.Cost_model.cost
    via_combine.Cost_model.cost;
  Alcotest.(check (float 0.001)) "card" via_jucq.Cost_model.card
    via_combine.Cost_model.card

let test_calibration () =
  let env = Lazy.force lubm_env in
  let m = Calibrate.measure env in
  Alcotest.(check bool) "probe measured" true (m.Calibrate.probe_ns > 0.0);
  Alcotest.(check bool) "tuple measured" true (m.Calibrate.tuple_ns > 0.0);
  let params = Calibrate.params_of_measurement m in
  Alcotest.(check (float 0.001)) "tuple is the unit" 1.0 params.Cost_model.c_tuple;
  Alcotest.(check bool) "overhead dominates a tuple" true
    (params.Cost_model.c_cq_overhead > 1.0);
  (* Calibrated params must preserve the model's structural properties:
     bigger unions cost more (the crossover *scale* between covers is
     machine-dependent, so we do not pin it). *)
  let cl = Lazy.force lubm_closure in
  let ub name = Term.uri (Refq_workload.Lubm.ns ^ name) in
  let ucq_of cls =
    Reformulate.cq_to_ucq cl
      (Cq.make ~head:[ Cq.var "x" ]
         ~body:[ Cq.atom (Cq.var "x") (Cq.cst Vocab.rdf_type) (Cq.cst (ub cls)) ])
  in
  let c1 = (Cost_model.ucq ~params env (ucq_of "Course")).Cost_model.cost in
  let c2 = (Cost_model.ucq ~params env (ucq_of "Work")).Cost_model.cost in
  Alcotest.(check bool) "calibrated cost still monotone" true (c2 > c1)

let test_order_atoms_stable () =
  let env = Lazy.force lubm_env in
  let body = Refq_workload.Lubm.example1_query.Cq.body in
  let o1 = Cardinality.order_atoms env body in
  let o2 = Cardinality.order_atoms env body in
  Alcotest.(check bool) "deterministic" true (o1 = o2);
  Alcotest.(check int) "keeps all atoms" (List.length body) (List.length o1)

let () =
  Alcotest.run "cost"
    [
      ( "cardinality",
        [
          Alcotest.test_case "exact base counts" `Quick test_atom_base_counts;
          Alcotest.test_case "absent constant" `Quick test_absent_constant_zero;
          Alcotest.test_case "bound-variable selectivity" `Quick
            test_bound_var_selectivity;
          Alcotest.test_case "single-atom estimate" `Quick
            test_cq_estimate_reasonable;
          Alcotest.test_case "atom order stable" `Quick test_order_atoms_stable;
        ] );
      ( "cost model",
        [
          Alcotest.test_case "monotone in disjuncts" `Quick
            test_cost_monotone_in_disjuncts;
          Alcotest.test_case "infeasible = infinity" `Quick
            test_infeasible_is_infinite;
          Alcotest.test_case "example 1 cover ranking" `Quick
            test_jucq_cost_prefers_good_cover;
          Alcotest.test_case "combine = jucq" `Quick test_combine_equals_jucq;
          Alcotest.test_case "calibration" `Quick test_calibration;
        ] );
      ( "plan",
        [
          Alcotest.test_case "explain CQ" `Quick test_plan_explain_cq;
          Alcotest.test_case "explain JUCQ" `Quick test_plan_explain_jucq;
        ] );
    ]
