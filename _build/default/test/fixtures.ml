(* Shared test fixtures: the paper's running example (Figure 2) and
   QCheck generators for random graphs, schemas and queries. *)

open Refq_rdf
open Refq_query

let ex = "http://example.org/"

let uri local = Term.uri (ex ^ local)

(* ------------------------------------------------------------------ *)
(* The Borges graph of Figure 2                                        *)
(* ------------------------------------------------------------------ *)

let doi1 = uri "doi1"
let book = uri "Book"
let publication = uri "Publication"
let person = uri "Person"
let written_by = uri "writtenBy"
let has_author = uri "hasAuthor"
let has_title = uri "hasTitle"
let has_name = uri "hasName"
let published_in = uri "publishedIn"
let b1 = Term.bnode "b1"

let borges_data =
  Graph.of_list
    [
      Triple.make doi1 Vocab.rdf_type book;
      Triple.make doi1 written_by b1;
      Triple.make doi1 has_title (Term.literal "El Aleph");
      Triple.make b1 has_name (Term.literal "J. L. Borges");
      Triple.make doi1 published_in (Term.literal "1949");
    ]

let borges_schema_graph =
  Graph.of_list
    [
      Triple.make book Vocab.rdfs_subclassof publication;
      Triple.make written_by Vocab.rdfs_subpropertyof has_author;
      Triple.make written_by Vocab.rdfs_domain book;
      Triple.make written_by Vocab.rdfs_range person;
    ]

let borges_graph = Graph.union borges_data borges_schema_graph

(* q(x3) :- x1 hasAuthor x2, x2 hasName x3, x1 x4 "1949" *)
let borges_query =
  Cq.make
    ~head:[ Cq.var "x3" ]
    ~body:
      [
        Cq.atom (Cq.var "x1") (Cq.cst has_author) (Cq.var "x2");
        Cq.atom (Cq.var "x2") (Cq.cst has_name) (Cq.var "x3");
        Cq.atom (Cq.var "x1") (Cq.var "x4") (Cq.cst (Term.literal "1949"));
      ]

(* ------------------------------------------------------------------ *)
(* Random instances for property-based tests                           *)
(* ------------------------------------------------------------------ *)

let classes = Array.init 6 (fun i -> uri (Printf.sprintf "C%d" i))
let props = Array.init 4 (fun i -> uri (Printf.sprintf "p%d" i))
let inds = Array.init 8 (fun i -> uri (Printf.sprintf "a%d" i))
let lits = Array.init 3 (fun i -> Term.literal (Printf.sprintf "l%d" i))

open QCheck2

let gen_class = Gen.oneofa classes
let gen_prop = Gen.oneofa props
let gen_ind = Gen.oneofa inds

let gen_node =
  Gen.frequency [ (4, gen_ind); (1, Gen.oneofa lits) ]

let gen_schema_triple =
  Gen.frequency
    [
      ( 3,
        Gen.map2
          (fun c1 c2 -> Triple.make c1 Vocab.rdfs_subclassof c2)
          gen_class gen_class );
      ( 2,
        Gen.map2
          (fun p1 p2 -> Triple.make p1 Vocab.rdfs_subpropertyof p2)
          gen_prop gen_prop );
      ( 2,
        Gen.map2 (fun p c -> Triple.make p Vocab.rdfs_domain c) gen_prop
          gen_class );
      ( 2,
        Gen.map2 (fun p c -> Triple.make p Vocab.rdfs_range c) gen_prop
          gen_class );
    ]

let gen_data_triple =
  Gen.frequency
    [
      ( 2,
        Gen.map2
          (fun s c -> Triple.make s Vocab.rdf_type c)
          gen_ind gen_class );
      ( 4,
        Gen.map3 (fun s p o -> Triple.make s p o) gen_ind gen_prop gen_node );
    ]

let gen_graph =
  Gen.map2
    (fun schema data -> Graph.of_list (schema @ data))
    (Gen.list_size (Gen.int_range 0 6) gen_schema_triple)
    (Gen.list_size (Gen.int_range 0 25) gen_data_triple)

(* Random query atoms over the same vocabulary. Variables come from a
   small pool so that atoms share variables often. *)
let var_pool = [| "x"; "y"; "z"; "w" |]

let gen_var = Gen.oneofa var_pool

let gen_pat_of g = Gen.frequency [ (2, Gen.map Cq.var gen_var); (3, Gen.map Cq.cst g) ]

let gen_atom =
  Gen.frequency
    [
      (* class assertion atom *)
      ( 3,
        Gen.map2
          (fun s o -> Cq.atom s (Cq.cst Vocab.rdf_type) o)
          (gen_pat_of gen_ind) (gen_pat_of gen_class) );
      (* property atom *)
      ( 4,
        Gen.map3
          (fun s p o -> Cq.atom s p o)
          (gen_pat_of gen_ind)
          (Gen.frequency [ (4, Gen.map Cq.cst gen_prop); (1, Gen.map Cq.var gen_var) ])
          (gen_pat_of gen_node) );
      (* schema atom *)
      ( 1,
        Gen.map3
          (fun s p o -> Cq.atom s (Cq.cst p) o)
          (gen_pat_of gen_class)
          (Gen.oneofl
             [ Vocab.rdfs_subclassof; Vocab.rdfs_subpropertyof ])
          (gen_pat_of gen_class) );
    ]

let gen_cq =
  let open Gen in
  let* body = list_size (int_range 1 3) gen_atom in
  let vars = Cq.body_vars { Cq.head = []; body } in
  let* head_vars =
    match vars with
    | [] -> pure []
    | _ ->
      let* keep = list_repeat (List.length vars) bool in
      pure (List.filteri (fun i _ -> List.nth keep i) vars)
  in
  pure (Cq.make ~head:(List.map Cq.var head_vars) ~body)

let gen_graph_and_cq = Gen.pair gen_graph gen_cq

(* Pretty-printers for counterexample reporting. *)
let print_graph g = Fmt.str "%a" Graph.pp g
let print_cq q = Fmt.str "%a" Cq.pp q
let print_graph_and_cq (g, q) =
  Printf.sprintf "graph:\n%s\nquery: %s" (print_graph g) (print_cq q)

let rows_to_string rows =
  String.concat "\n"
    (List.map
       (fun row -> String.concat ", " (List.map Term.to_string row))
       rows)
