(* Tests for the Datalog engine and the Dat (LogicBlox stand-in)
   encoding. *)

open Refq_rdf
open Refq_storage
open Refq_datalog

let v x = Datalog.Var x
let k i = Datalog.Cst i

let test_rule_safety () =
  (match Datalog.rule (Datalog.atom "p" [ v "x" ]) [] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "empty body accepted");
  match Datalog.rule (Datalog.atom "p" [ v "x" ]) [ Datalog.atom "q" [ v "y" ] ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "unsafe head accepted"

let test_db_dedup () =
  let db = Datalog.Db.create () in
  Datalog.Db.add_fact db "e" [| 1; 2 |];
  Datalog.Db.add_fact db "e" [| 1; 2 |];
  Alcotest.(check int) "dedup" 1 (Datalog.Db.cardinality db "e")

let test_transitive_closure () =
  (* tc(x,y) :- e(x,y).  tc(x,z) :- e(x,y), tc(y,z). over a chain. *)
  let db = Datalog.Db.create () in
  for i = 0 to 9 do
    Datalog.Db.add_fact db "e" [| i; i + 1 |]
  done;
  let rules =
    [
      Datalog.rule (Datalog.atom "tc" [ v "x"; v "y" ])
        [ Datalog.atom "e" [ v "x"; v "y" ] ];
      Datalog.rule (Datalog.atom "tc" [ v "x"; v "z" ])
        [ Datalog.atom "e" [ v "x"; v "y" ]; Datalog.atom "tc" [ v "y"; v "z" ] ];
    ]
  in
  let stats = Datalog.eval rules db in
  (* chain of 11 nodes: 10*11/2 = 55 pairs *)
  Alcotest.(check int) "tc pairs" 55 (Datalog.Db.cardinality db "tc");
  Alcotest.(check int) "all derived" 55 stats.Datalog.derived;
  (* facts emitted in a round are visible within it, so convergence takes
     one productive round plus the empty fixpoint check *)
  Alcotest.(check bool) "at least two rounds" true (stats.Datalog.iterations >= 2)

let test_constants_in_rules () =
  let db = Datalog.Db.create () in
  Datalog.Db.add_fact db "e" [| 1; 7 |];
  Datalog.Db.add_fact db "e" [| 2; 8 |];
  let rules =
    [
      Datalog.rule (Datalog.atom "sel" [ v "x" ]) [ Datalog.atom "e" [ v "x"; k 7 ] ];
    ]
  in
  ignore (Datalog.eval rules db);
  Alcotest.(check int) "selection" 1 (Datalog.Db.cardinality db "sel")

let test_repeated_vars () =
  let db = Datalog.Db.create () in
  Datalog.Db.add_fact db "e" [| 1; 1 |];
  Datalog.Db.add_fact db "e" [| 1; 2 |];
  let rules =
    [
      Datalog.rule (Datalog.atom "loop" [ v "x" ]) [ Datalog.atom "e" [ v "x"; v "x" ] ];
    ]
  in
  ignore (Datalog.eval rules db);
  Alcotest.(check int) "self loops" 1 (Datalog.Db.cardinality db "loop")

let test_dat_borges () =
  let store = Store.of_graph Fixtures.borges_graph in
  let rel, stats = Rdf_encoding.answer store Fixtures.borges_query in
  let rows = Refq_engine.Relation.decode_rows (Store.dictionary store) rel in
  Alcotest.(check bool) "derived facts" true (stats.Datalog.derived > 0);
  Alcotest.(check bool) "borges answer" true
    (rows = [ [ Term.literal "J. L. Borges" ] ])

let test_dat_absent_constant () =
  let store = Store.of_graph Fixtures.borges_graph in
  let q =
    Refq_query.Cq.make
      ~head:[ Refq_query.Cq.var "x" ]
      ~body:
        [
          Refq_query.Cq.atom (Refq_query.Cq.var "x")
            (Refq_query.Cq.cst (Fixtures.uri "nosuch"))
            (Refq_query.Cq.var "y");
        ]
  in
  let rel, _ = Rdf_encoding.answer store q in
  Alcotest.(check int) "no answers" 0 (Refq_engine.Relation.cardinality rel)

(* Property: Dat agrees with saturation-based answering. *)
let prop_dat_equals_sat =
  QCheck2.Test.make ~name:"Dat = q(G∞)" ~count:100
    ~print:Fixtures.print_graph_and_cq Fixtures.gen_graph_and_cq
    (fun (g, q) ->
      let store = Store.of_graph g in
      let rel, _ = Rdf_encoding.answer store q in
      let rows = Refq_engine.Relation.decode_rows (Store.dictionary store) rel in
      rows = Refq_engine.Naive.cq (Refq_saturation.Saturate.graph g) q)

let () =
  Alcotest.run "datalog"
    [
      ( "engine",
        [
          Alcotest.test_case "rule safety" `Quick test_rule_safety;
          Alcotest.test_case "fact dedup" `Quick test_db_dedup;
          Alcotest.test_case "transitive closure" `Quick test_transitive_closure;
          Alcotest.test_case "constants" `Quick test_constants_in_rules;
          Alcotest.test_case "repeated variables" `Quick test_repeated_vars;
        ] );
      ( "rdf encoding",
        [
          Alcotest.test_case "borges" `Quick test_dat_borges;
          Alcotest.test_case "absent constant" `Quick test_dat_absent_constant;
          QCheck_alcotest.to_alcotest prop_dat_equals_sat;
        ] );
    ]
