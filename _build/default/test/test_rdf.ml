(* Tests for the RDF core: terms, triples, graphs, namespaces, parsers. *)

open Refq_rdf

let term = Alcotest.testable Term.pp Term.equal

let check_parse_nt name text expected () =
  match Ntriples.parse text with
  | Ok g ->
    Alcotest.(check int) name (Graph.cardinal expected) (Graph.cardinal g);
    Alcotest.(check bool) (name ^ " equal") true (Graph.equal g expected)
  | Error e -> Alcotest.failf "%s: parse error: %a" name Ntriples.pp_error e

let test_term_constructors () =
  Alcotest.(check bool) "uri is uri" true (Term.is_uri (Term.uri "http://a"));
  Alcotest.(check bool) "literal" true (Term.is_literal (Term.literal "x"));
  Alcotest.(check bool) "bnode" true (Term.is_bnode (Term.bnode "b"));
  Alcotest.check term "typed literal eq"
    (Term.typed_literal "1" Vocab.xsd_integer)
    (Term.typed_literal "1" Vocab.xsd_integer);
  Alcotest.(check bool) "plain <> typed" false
    (Term.equal (Term.literal "1") (Term.typed_literal "1" Vocab.xsd_integer))

let test_term_ordering () =
  let ts =
    [
      Term.literal "b";
      Term.uri "http://b";
      Term.bnode "x";
      Term.uri "http://a";
      Term.literal "a";
      Term.lang_literal "a" "en";
    ]
  in
  let sorted = List.sort Term.compare ts in
  (* URIs < literals < bnodes, each alphabetical. *)
  let expected =
    [
      Term.uri "http://a";
      Term.uri "http://b";
      Term.literal "a";
      Term.lang_literal "a" "en";
      Term.literal "b";
      Term.bnode "x";
    ]
  in
  List.iter2 (Alcotest.check term "order") expected sorted

let test_term_printing () =
  Alcotest.(check string) "uri" "<http://a>" (Term.to_string (Term.uri "http://a"));
  Alcotest.(check string) "plain" "\"x\"" (Term.to_string (Term.literal "x"));
  Alcotest.(check string) "lang" "\"x\"@en"
    (Term.to_string (Term.lang_literal "x" "en"));
  Alcotest.(check string) "escape" "\"a\\\"b\\nc\""
    (Term.to_string (Term.literal "a\"b\nc"))

let test_vocab () =
  Alcotest.(check bool) "rdf:type builtin" true (Vocab.is_rdf_builtin Vocab.rdf_type);
  Alcotest.(check bool) "schema prop" true
    (Vocab.is_schema_property Vocab.rdfs_domain);
  Alcotest.(check bool) "type not schema constraint" false
    (Vocab.is_schema_property Vocab.rdf_type);
  Alcotest.(check bool) "user uri not builtin" false
    (Vocab.is_rdf_builtin (Term.uri "http://example.org/x"))

let test_graph_ops () =
  let g = Fixtures.borges_graph in
  Alcotest.(check int) "cardinal" 9 (Graph.cardinal g);
  Alcotest.(check int) "schema triples" 4
    (Graph.cardinal (Graph.schema_triples g));
  Alcotest.(check int) "data triples" 5 (Graph.cardinal (Graph.data_triples g));
  Alcotest.(check bool) "mem" true
    (Graph.mem (Triple.make Fixtures.doi1 Vocab.rdf_type Fixtures.book) g);
  Alcotest.(check bool) "classes include Person" true
    (Term.Set.mem Fixtures.person (Graph.classes g));
  Alcotest.(check bool) "values include literal" true
    (Term.Set.mem (Term.literal "1949") (Graph.values g))

let test_namespace () =
  let env = Namespace.add Namespace.default ~prefix:"ex" ~uri:Fixtures.ex in
  (match Namespace.expand env "ex:Book" with
  | Ok u -> Alcotest.(check string) "expand" (Fixtures.ex ^ "Book") u
  | Error e -> Alcotest.fail e);
  Alcotest.(check (option string))
    "abbreviate" (Some "ex:Book")
    (Namespace.abbreviate env (Fixtures.ex ^ "Book"));
  Alcotest.(check (option string))
    "abbreviate rdf" (Some "rdf:type")
    (Namespace.abbreviate env (Vocab.rdf_ns ^ "type"));
  (match Namespace.expand env "nope:x" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unbound prefix should fail");
  Alcotest.(check (option string))
    "no abbreviation" None
    (Namespace.abbreviate env "http://other.org/x")

let test_ntriples_basic =
  check_parse_nt "basic"
    "<http://a> <http://p> <http://b> .\n# comment\n\n<http://a> <http://p> \"lit\" ."
    (Graph.of_list
       [
         Triple.make (Term.uri "http://a") (Term.uri "http://p") (Term.uri "http://b");
         Triple.make (Term.uri "http://a") (Term.uri "http://p") (Term.literal "lit");
       ])

let test_ntriples_literals =
  check_parse_nt "literals"
    "<http://a> <http://p> \"x\"@en .\n<http://a> <http://p> \"1\"^^<http://www.w3.org/2001/XMLSchema#integer> .\n_:b <http://p> \"a\\\"b\" ."
    (Graph.of_list
       [
         Triple.make (Term.uri "http://a") (Term.uri "http://p")
           (Term.lang_literal "x" "en");
         Triple.make (Term.uri "http://a") (Term.uri "http://p")
           (Term.typed_literal "1" Vocab.xsd_integer);
         Triple.make (Term.bnode "b") (Term.uri "http://p") (Term.literal "a\"b");
       ])

let test_ntriples_errors () =
  (match Ntriples.parse "<http://a> <http://p> ." with
  | Error e -> Alcotest.(check int) "error line" 1 e.Ntriples.line
  | Ok _ -> Alcotest.fail "missing object should fail");
  match Ntriples.parse "<http://a> <http://p> <http://b> .\n\"lit\" <http://p> <http://b> ." with
  | Error e -> Alcotest.(check int) "literal subject line" 2 e.Ntriples.line
  | Ok _ -> Alcotest.fail "literal subject should fail"

let test_ntriples_roundtrip () =
  let g = Fixtures.borges_graph in
  match Ntriples.parse (Ntriples.to_string g) with
  | Ok g' -> Alcotest.(check bool) "roundtrip" true (Graph.equal g g')
  | Error e -> Alcotest.failf "roundtrip: %a" Ntriples.pp_error e

let turtle_doc =
  {|@prefix ex: <http://example.org/> .
# the Borges book
ex:doi1 a ex:Book ;
    ex:writtenBy _:b1 ;
    ex:hasTitle "El Aleph" ;
    ex:publishedIn "1949" .
_:b1 ex:hasName "J. L. Borges" .
ex:Book rdfs:subClassOf ex:Publication .
ex:writtenBy rdfs:subPropertyOf ex:hasAuthor ;
    rdfs:domain ex:Book ;
    rdfs:range ex:Person .
|}

let test_turtle_parse () =
  match Turtle.parse_graph turtle_doc with
  | Ok g ->
    Alcotest.(check bool) "turtle = borges graph" true
      (Graph.equal g Fixtures.borges_graph)
  | Error e -> Alcotest.failf "turtle: %a" Turtle.pp_error e

let test_turtle_numbers () =
  match Turtle.parse_graph "@prefix ex: <http://e/> .\nex:a ex:p 42 , 3.14 , true ." with
  | Ok g ->
    Alcotest.(check int) "three triples" 3 (Graph.cardinal g);
    Alcotest.(check bool) "int typed" true
      (Graph.mem
         (Triple.make (Term.uri "http://e/a") (Term.uri "http://e/p")
            (Term.typed_literal "42" Vocab.xsd_integer))
         g)
  | Error e -> Alcotest.failf "turtle numbers: %a" Turtle.pp_error e

let test_turtle_roundtrip () =
  let env = Namespace.add Namespace.default ~prefix:"ex" ~uri:Fixtures.ex in
  let text = Turtle.to_string ~env Fixtures.borges_graph in
  match Turtle.parse_graph ~env text with
  | Ok g -> Alcotest.(check bool) "roundtrip" true (Graph.equal g Fixtures.borges_graph)
  | Error e -> Alcotest.failf "turtle roundtrip: %a\n%s" Turtle.pp_error e text

let test_turtle_trailing_semicolon () =
  match
    Turtle.parse_graph
      "@prefix ex: <http://e/> .\nex:a ex:p ex:b ;\n  ex:q ex:c ;\n."
  with
  | Ok g -> Alcotest.(check int) "two triples" 2 (Graph.cardinal g)
  | Error e -> Alcotest.failf "trailing semicolon: %a" Turtle.pp_error e

let test_namespace_longest_match () =
  (* Nested namespaces: the longest matching one wins. *)
  let env =
    Namespace.add
      (Namespace.add Namespace.default ~prefix:"a" ~uri:"http://e/")
      ~prefix:"b" ~uri:"http://e/sub/"
  in
  Alcotest.(check (option string))
    "longest wins" (Some "b:x")
    (Namespace.abbreviate env "http://e/sub/x");
  Alcotest.(check (option string))
    "outer still used" (Some "a:y")
    (Namespace.abbreviate env "http://e/y");
  (* Unsafe local parts are not abbreviated. *)
  Alcotest.(check (option string))
    "unsafe local" None
    (Namespace.abbreviate env "http://e/a b")

let test_graph_seq () =
  let g = Fixtures.borges_graph in
  Alcotest.(check bool) "of_seq ∘ to_seq = id" true
    (Graph.equal g (Graph.of_seq (Graph.to_seq g)));
  let removed =
    Graph.remove (Triple.make Fixtures.doi1 Vocab.rdf_type Fixtures.book) g
  in
  Alcotest.(check int) "remove" 8 (Graph.cardinal removed);
  Alcotest.(check int) "diff" 1 (Graph.cardinal (Graph.diff g removed))

let test_turtle_errors () =
  (match Turtle.parse_graph "ex:a ex:p ex:b ." with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unbound prefix should fail");
  match Turtle.parse_graph "@prefix ex: <http://e/> .\nex:a ex:p ." with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "truncated triple should fail"

(* ------------------------------------------------------------------ *)
(* Graph isomorphism                                                   *)
(* ------------------------------------------------------------------ *)

let test_isomorphism_basic () =
  let u = Fixtures.uri in
  let g1 =
    Graph.of_list
      [
        Triple.make (u "doi") (u "writtenBy") (Term.bnode "a");
        Triple.make (Term.bnode "a") (u "hasName") (Term.literal "X");
      ]
  in
  let g2 =
    Graph.of_list
      [
        Triple.make (u "doi") (u "writtenBy") (Term.bnode "z");
        Triple.make (Term.bnode "z") (u "hasName") (Term.literal "X");
      ]
  in
  Alcotest.(check bool) "renamed bnode" true (Isomorphism.equal g1 g2);
  Alcotest.(check bool) "not structurally equal" false (Graph.equal g1 g2);
  (match Isomorphism.find_mapping g1 g2 with
  | Some [ ("a", "z") ] -> ()
  | _ -> Alcotest.fail "expected the a→z mapping");
  let g3 =
    Graph.of_list
      [
        Triple.make (u "doi") (u "writtenBy") (Term.bnode "z");
        Triple.make (Term.bnode "z") (u "hasName") (Term.literal "Y");
      ]
  in
  Alcotest.(check bool) "different literal" false (Isomorphism.equal g1 g3)

let test_isomorphism_two_bnodes () =
  let u = Fixtures.uri in
  (* Two bnodes with swapped roles must map crosswise, not positionally. *)
  let g1 =
    Graph.of_list
      [
        Triple.make (Term.bnode "a") (u "p") (u "one");
        Triple.make (Term.bnode "b") (u "p") (u "two");
      ]
  in
  let g2 =
    Graph.of_list
      [
        Triple.make (Term.bnode "a") (u "p") (u "two");
        Triple.make (Term.bnode "b") (u "p") (u "one");
      ]
  in
  Alcotest.(check bool) "crosswise mapping found" true (Isomorphism.equal g1 g2);
  (* And a bnode-count mismatch fails fast. *)
  let g3 = Graph.of_list [ Triple.make (Term.bnode "a") (u "p") (u "one") ] in
  Alcotest.(check bool) "count mismatch" false (Isomorphism.equal g1 g3)

let test_isomorphism_ground () =
  Alcotest.(check bool) "ground graphs compare plainly" true
    (Isomorphism.equal Fixtures.borges_schema_graph Fixtures.borges_schema_graph)

(* Parsers must never raise on arbitrary input — they return Error. *)
let gen_garbage =
  QCheck2.Gen.(string_size ~gen:printable (int_range 0 200))

let prop_ntriples_total =
  QCheck2.Test.make ~name:"N-Triples parser is total" ~count:500
    ~print:(Printf.sprintf "%S") gen_garbage (fun text ->
      match Ntriples.parse text with Ok _ | Error _ -> true)

let prop_turtle_total =
  QCheck2.Test.make ~name:"Turtle parser is total" ~count:500
    ~print:(Printf.sprintf "%S") gen_garbage (fun text ->
      match Turtle.parse_graph text with Ok _ | Error _ -> true)

let prop_bnode_rename_isomorphic =
  QCheck2.Test.make ~name:"bnode renaming preserves isomorphism" ~count:100
    ~print:Fixtures.print_graph Fixtures.gen_graph (fun g ->
      (* Rename every bnode label (fixtures only generate _:b-free graphs,
         so add one bnode edge first to make it interesting). *)
      let u = Fixtures.uri in
      let g = Graph.add (Triple.make (u "a0") (u "p0") (Term.bnode "n")) g in
      let renamed =
        Graph.fold
          (fun { Triple.s; p; o } acc ->
            let sub = function
              | Term.Bnode l -> Term.bnode ("renamed_" ^ l)
              | t -> t
            in
            Graph.add (Triple.make (sub s) (sub p) (sub o)) acc)
          g Graph.empty
      in
      Isomorphism.equal g renamed)

(* Property: printing then parsing any graph over the fixture vocabulary is
   the identity. *)
let prop_ntriples_roundtrip =
  QCheck2.Test.make ~name:"ntriples print/parse roundtrip" ~count:100
    ~print:Fixtures.print_graph Fixtures.gen_graph (fun g ->
      match Ntriples.parse (Ntriples.to_string g) with
      | Ok g' -> Graph.equal g g'
      | Error _ -> false)

let prop_turtle_roundtrip =
  QCheck2.Test.make ~name:"turtle print/parse roundtrip" ~count:100
    ~print:Fixtures.print_graph Fixtures.gen_graph (fun g ->
      let env =
        Namespace.add Namespace.default ~prefix:"ex" ~uri:Fixtures.ex
      in
      match Turtle.parse_graph ~env (Turtle.to_string ~env g) with
      | Ok g' -> Graph.equal g g'
      | Error _ -> false)

let () =
  Alcotest.run "rdf"
    [
      ( "term",
        [
          Alcotest.test_case "constructors" `Quick test_term_constructors;
          Alcotest.test_case "ordering" `Quick test_term_ordering;
          Alcotest.test_case "printing" `Quick test_term_printing;
        ] );
      ("vocab", [ Alcotest.test_case "builtins" `Quick test_vocab ]);
      ( "graph",
        [
          Alcotest.test_case "operations" `Quick test_graph_ops;
          Alcotest.test_case "sequences and diff" `Quick test_graph_seq;
        ] );
      ( "namespace",
        [
          Alcotest.test_case "expand/abbreviate" `Quick test_namespace;
          Alcotest.test_case "longest match" `Quick test_namespace_longest_match;
        ] );
      ( "ntriples",
        [
          Alcotest.test_case "basic" `Quick test_ntriples_basic;
          Alcotest.test_case "literals" `Quick test_ntriples_literals;
          Alcotest.test_case "errors" `Quick test_ntriples_errors;
          Alcotest.test_case "roundtrip" `Quick test_ntriples_roundtrip;
          QCheck_alcotest.to_alcotest prop_ntriples_roundtrip;
        ] );
      ( "isomorphism",
        [
          Alcotest.test_case "renamed bnode" `Quick test_isomorphism_basic;
          Alcotest.test_case "crosswise bnodes" `Quick test_isomorphism_two_bnodes;
          Alcotest.test_case "ground graphs" `Quick test_isomorphism_ground;
          QCheck_alcotest.to_alcotest prop_bnode_rename_isomorphic;
        ] );
      ( "fuzz",
        [
          QCheck_alcotest.to_alcotest prop_ntriples_total;
          QCheck_alcotest.to_alcotest prop_turtle_total;
        ] );
      ( "turtle",
        [
          Alcotest.test_case "parse" `Quick test_turtle_parse;
          Alcotest.test_case "numbers" `Quick test_turtle_numbers;
          Alcotest.test_case "roundtrip" `Quick test_turtle_roundtrip;
          Alcotest.test_case "errors" `Quick test_turtle_errors;
          Alcotest.test_case "trailing semicolon" `Quick
            test_turtle_trailing_semicolon;
          QCheck_alcotest.to_alcotest prop_turtle_roundtrip;
        ] );
    ]
