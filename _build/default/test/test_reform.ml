(* Tests for the reformulation algorithms: per-atom rules, CQ→UCQ, covers
   and the cross-strategy equivalence q(G∞) = qref(G) — the paper's core
   correctness claim. *)

open Refq_rdf
open Refq_schema
open Refq_query
open Refq_storage
open Refq_engine
open Refq_cost
open Refq_reform

let rows = Alcotest.testable
    (fun ppf r -> Fmt.string ppf (Fixtures.rows_to_string r))
    (List.equal (List.equal Term.equal))

let borges_closure = Closure.of_graph Fixtures.borges_graph

let fresh_gen () =
  let n = ref 0 in
  fun () ->
    incr n;
    Printf.sprintf "%s%d" Cq.fresh_var_prefix !n

(* ------------------------------------------------------------------ *)
(* Per-atom rules                                                      *)
(* ------------------------------------------------------------------ *)

let test_rewrite_type_atom () =
  (* (x rdf:type Publication): identity + R1 subclass Book + R2 domain
     writtenBy (domains are closed upward). *)
  let a =
    Cq.atom (Cq.var "x") (Cq.cst Vocab.rdf_type) (Cq.cst Fixtures.publication)
  in
  let rs = Atom_reform.rewrite borges_closure ~fresh:(fresh_gen ()) a in
  Alcotest.(check int) "3 rewritings" 3 (List.length rs);
  let has_atom pred =
    List.exists
      (fun r -> match r.Atom_reform.atom with Some a -> pred a | None -> false)
      rs
  in
  Alcotest.(check bool) "R1 book" true
    (has_atom (fun a -> Cq.pat_equal a.Cq.o (Cq.cst Fixtures.book)));
  Alcotest.(check bool) "R2 writtenBy" true
    (has_atom (fun a -> Cq.pat_equal a.Cq.p (Cq.cst Fixtures.written_by)))

let test_rewrite_property_atom () =
  (* (x hasAuthor y): identity + R4 writtenBy. *)
  let a = Cq.atom (Cq.var "x") (Cq.cst Fixtures.has_author) (Cq.var "y") in
  let rs = Atom_reform.rewrite borges_closure ~fresh:(fresh_gen ()) a in
  Alcotest.(check int) "2 rewritings" 2 (List.length rs)

let test_rewrite_type_var () =
  (* (doi1 rdf:type z): identity + R5 {z→Publication} + R2-style via domain
     pairs {z→Book, z→Publication} + range pairs {z→Person}. *)
  let a = Cq.atom (Cq.cst Fixtures.doi1) (Cq.cst Vocab.rdf_type) (Cq.var "z") in
  let rs = Atom_reform.rewrite borges_closure ~fresh:(fresh_gen ()) a in
  (* subclass pairs: (Book,Publication) → 1; domain pairs: writtenBy↪Book,
     writtenBy↪Publication → 2; range pairs: writtenBy↪Person → 1. *)
  Alcotest.(check int) "5 rewritings" 5 (List.length rs);
  let bindings =
    List.filter_map
      (fun r -> Cq.Subst.find "z" r.Atom_reform.subst)
      rs
  in
  Alcotest.(check bool) "z→Person possible" true
    (List.exists (Term.equal Fixtures.person) bindings)

let test_rewrite_schema_atom () =
  (* (Book subClassOf y): identity + R10 instantiation {y→Publication}
     with the atom dropped. *)
  let a =
    Cq.atom (Cq.cst Fixtures.book) (Cq.cst Vocab.rdfs_subclassof) (Cq.var "y")
  in
  let rs = Atom_reform.rewrite borges_closure ~fresh:(fresh_gen ()) a in
  Alcotest.(check int) "2 rewritings" 2 (List.length rs);
  Alcotest.(check bool) "dropped atom" true
    (List.exists
       (fun r ->
         r.Atom_reform.atom = None
         && Cq.Subst.find "y" r.Atom_reform.subst
            = Some Fixtures.publication)
       rs)

let test_profiles_restrict () =
  let a =
    Cq.atom (Cq.var "x") (Cq.cst Vocab.rdf_type) (Cq.cst Fixtures.publication)
  in
  let count p = List.length (Atom_reform.rewrite ~profile:p borges_closure ~fresh:(fresh_gen ()) a) in
  Alcotest.(check int) "complete" 3 (count Profiles.complete);
  Alcotest.(check int) "hierarchies-only" 2 (count Profiles.hierarchies_only);
  Alcotest.(check int) "subclass-only" 2 (count Profiles.subclass_only);
  Alcotest.(check int) "none" 1 (count Profiles.none)

(* ------------------------------------------------------------------ *)
(* CQ → UCQ on the paper's example                                     *)
(* ------------------------------------------------------------------ *)

let test_borges_ucq () =
  let u = Reformulate.cq_to_ucq borges_closure Fixtures.borges_query in
  (* atom1: {hasAuthor, writtenBy}; atom2: {hasName};
     atom3: {identity, writtenBy with x4→hasAuthor}. *)
  Alcotest.(check int) "4 disjuncts" 4 (Ucq.size u);
  Alcotest.(check int) "count agrees" 4
    (Reformulate.count_disjuncts borges_closure Fixtures.borges_query)

let eval_rows env r = Relation.decode_rows (Store.dictionary env.Cardinality.store) r

let borges_expected = [ [ Term.literal "J. L. Borges" ] ]

let test_borges_strategies () =
  let store = Store.of_graph Fixtures.borges_graph in
  let env = Cardinality.make_env store in
  let q = Fixtures.borges_query in
  (* UCQ *)
  let ucq = Reformulate.cq_to_ucq borges_closure q in
  let cols = Array.init (Cq.arity q) (fun i -> Printf.sprintf "c%d" i) in
  Alcotest.check rows "UCQ answer" borges_expected
    (eval_rows env (Evaluator.ucq env ~cols ucq));
  (* SCQ *)
  Alcotest.check rows "SCQ answer" borges_expected
    (eval_rows env (Evaluator.jucq env (Reformulate.scq borges_closure q)));
  (* UCQ-as-JUCQ *)
  Alcotest.check rows "one-fragment JUCQ answer" borges_expected
    (eval_rows env (Evaluator.jucq env (Reformulate.ucq_as_jucq borges_closure q)));
  (* A hand-picked overlapping cover. *)
  let cover = Cover.make ~n_atoms:3 [ [ 0; 1 ]; [ 1; 2 ] ] in
  Alcotest.check rows "overlapping cover answer" borges_expected
    (eval_rows env
       (Evaluator.jucq env (Reformulate.cover_to_jucq borges_closure q cover)))

let test_too_large () =
  match
    Reformulate.cq_to_ucq ~max_disjuncts:1 borges_closure Fixtures.borges_query
  with
  | exception Reformulate.Too_large n ->
    Alcotest.(check bool) "reported size" true (n > 1)
  | _ -> Alcotest.fail "Too_large not raised"

let test_incomplete_profile_misses_answers () =
  (* Without domain/range rules the Borges query still works (it only
     needs subproperty reasoning), but a domain-dependent query fails. *)
  let q =
    Cq.make ~head:[ Cq.var "x" ]
      ~body:[ Cq.atom (Cq.var "x") (Cq.cst Vocab.rdf_type) (Cq.cst Fixtures.person) ]
  in
  let store = Store.of_graph Fixtures.borges_graph in
  let env = Cardinality.make_env store in
  let answers profile =
    let u = Reformulate.cq_to_ucq ~profile borges_closure q in
    eval_rows env (Evaluator.ucq env ~cols:[| "x" |] u)
  in
  Alcotest.check rows "complete finds Person" [ [ Fixtures.b1 ] ]
    (answers Profiles.complete);
  Alcotest.check rows "hierarchies-only misses Person" []
    (answers Profiles.hierarchies_only)

(* ------------------------------------------------------------------ *)
(* Cross-strategy equivalence on random inputs                         *)
(* ------------------------------------------------------------------ *)

let gen_cover_for n =
  let open QCheck2.Gen in
  let* k = int_range 1 (max 1 n) in
  let* assignment = list_repeat n (int_range 0 (k - 1)) in
  let frags = Array.make k [] in
  List.iteri (fun atom f -> frags.(f) <- atom :: frags.(f)) assignment;
  (* Drop empty fragments; guarantee coverage by construction. *)
  let frags = Array.to_list frags |> List.filter (fun f -> f <> []) in
  pure (Cover.make ~n_atoms:n frags)

let gen_instance =
  let open QCheck2.Gen in
  let* g, q = Fixtures.gen_graph_and_cq in
  let* cover = gen_cover_for (List.length q.Cq.body) in
  pure (g, q, cover)

let print_instance (g, q, cover) =
  Printf.sprintf "%s\ncover: %s"
    (Fixtures.print_graph_and_cq (g, q))
    (Fmt.str "%a" Cover.pp cover)

let expected_answers g q =
  Naive.cq (Refq_saturation.Saturate.graph g) q

let prop_ucq_complete =
  QCheck2.Test.make ~name:"q(G∞) = UCQ-reformulation(G)" ~count:250
    ~print:Fixtures.print_graph_and_cq Fixtures.gen_graph_and_cq
    (fun (g, q) ->
      let cl = Closure.of_graph g in
      let u = Reformulate.cq_to_ucq cl q in
      Naive.ucq g u = expected_answers g q)

let prop_ucq_complete_engine =
  QCheck2.Test.make ~name:"engine UCQ reformulation = q(G∞)" ~count:250
    ~print:Fixtures.print_graph_and_cq Fixtures.gen_graph_and_cq
    (fun (g, q) ->
      let cl = Closure.of_graph g in
      let u = Reformulate.cq_to_ucq cl q in
      let env = Cardinality.make_env (Store.of_graph g) in
      let cols = Array.init (Cq.arity q) (fun i -> Printf.sprintf "c%d" i) in
      eval_rows env (Evaluator.ucq env ~cols u) = expected_answers g q)

let prop_scq_complete =
  QCheck2.Test.make ~name:"engine SCQ reformulation = q(G∞)" ~count:250
    ~print:Fixtures.print_graph_and_cq Fixtures.gen_graph_and_cq
    (fun (g, q) ->
      let cl = Closure.of_graph g in
      let env = Cardinality.make_env (Store.of_graph g) in
      eval_rows env (Evaluator.jucq env (Reformulate.scq cl q))
      = expected_answers g q)

let prop_any_cover_complete =
  QCheck2.Test.make ~name:"engine JUCQ(any cover) = q(G∞)" ~count:250
    ~print:print_instance gen_instance (fun (g, q, cover) ->
      let cl = Closure.of_graph g in
      let env = Cardinality.make_env (Store.of_graph g) in
      eval_rows env (Evaluator.jucq env (Reformulate.cover_to_jucq cl q cover))
      = expected_answers g q)

let prop_naive_jucq_complete =
  QCheck2.Test.make ~name:"naive JUCQ(any cover) = q(G∞)" ~count:150
    ~print:print_instance gen_instance (fun (g, q, cover) ->
      let cl = Closure.of_graph g in
      Naive.jucq g (Reformulate.cover_to_jucq cl q cover)
      = expected_answers g q)

let prop_profiles_sound =
  QCheck2.Test.make
    ~name:"incomplete profiles: sound (⊆ complete) and ⊇ plain evaluation"
    ~count:150 ~print:Fixtures.print_graph_and_cq Fixtures.gen_graph_and_cq
    (fun (g, q) ->
      let cl = Closure.of_graph g in
      let answers profile = Naive.ucq g (Reformulate.cq_to_ucq ~profile cl q) in
      let complete = answers Profiles.complete in
      let plain = Naive.cq g q in
      List.for_all
        (fun profile ->
          let a = answers profile in
          List.for_all (fun row -> List.mem row complete) a
          && List.for_all (fun row -> List.mem row a) plain)
        [ Profiles.hierarchies_only; Profiles.subclass_only; Profiles.none ])

let prop_empty_body_disjuncts_evaluate =
  QCheck2.Test.make
    ~name:"schema-atom reformulation (dropped atoms) evaluates correctly"
    ~count:100 ~print:Fixtures.print_graph Fixtures.gen_graph
    (fun g ->
      (* q(c1, c2) :- c1 subClassOf c2 must return the closure's pairs plus
         explicit triples, through every evaluation path. *)
      let q =
        Cq.make
          ~head:[ Cq.var "c1"; Cq.var "c2" ]
          ~body:
            [ Cq.atom (Cq.var "c1") (Cq.cst Refq_rdf.Vocab.rdfs_subclassof)
                (Cq.var "c2") ]
      in
      let cl = Closure.of_graph g in
      let u = Reformulate.cq_to_ucq cl q in
      let env = Cardinality.make_env (Store.of_graph g) in
      let got = eval_rows env (Evaluator.ucq env ~cols:[| "c1"; "c2" |] u) in
      got = expected_answers g q)

let prop_count_matches =
  QCheck2.Test.make ~name:"count_disjuncts ≥ |UCQ| (dedup only shrinks)"
    ~count:150 ~print:Fixtures.print_graph_and_cq Fixtures.gen_graph_and_cq
    (fun (g, q) ->
      let cl = Closure.of_graph g in
      let u = Reformulate.cq_to_ucq cl q in
      Reformulate.count_disjuncts cl q >= Ucq.size u)

let () =
  Alcotest.run "reform"
    [
      ( "atom rules",
        [
          Alcotest.test_case "type atom (R1-R3)" `Quick test_rewrite_type_atom;
          Alcotest.test_case "property atom (R4)" `Quick test_rewrite_property_atom;
          Alcotest.test_case "type variable (R5-R7)" `Quick test_rewrite_type_var;
          Alcotest.test_case "schema atom (R10)" `Quick test_rewrite_schema_atom;
          Alcotest.test_case "profiles" `Quick test_profiles_restrict;
        ] );
      ( "cq→ucq",
        [
          Alcotest.test_case "borges UCQ" `Quick test_borges_ucq;
          Alcotest.test_case "borges all strategies" `Quick test_borges_strategies;
          Alcotest.test_case "too large" `Quick test_too_large;
          Alcotest.test_case "incomplete profiles" `Quick
            test_incomplete_profile_misses_answers;
        ] );
      ( "equivalence",
        [
          QCheck_alcotest.to_alcotest prop_ucq_complete;
          QCheck_alcotest.to_alcotest prop_ucq_complete_engine;
          QCheck_alcotest.to_alcotest prop_scq_complete;
          QCheck_alcotest.to_alcotest prop_any_cover_complete;
          QCheck_alcotest.to_alcotest prop_naive_jucq_complete;
          QCheck_alcotest.to_alcotest prop_count_matches;
          QCheck_alcotest.to_alcotest prop_profiles_sound;
          QCheck_alcotest.to_alcotest prop_empty_body_disjuncts_evaluate;
        ] );
    ]
