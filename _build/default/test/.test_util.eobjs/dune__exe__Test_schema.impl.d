test/test_schema.ml: Alcotest Closure Fixtures Fmt Graph List QCheck2 QCheck_alcotest Refq_rdf Refq_schema Schema Term Triple Vocab
