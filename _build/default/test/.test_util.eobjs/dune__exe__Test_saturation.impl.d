test/test_saturation.ml: Alcotest Fixtures Fmt Graph List Printf QCheck2 QCheck_alcotest Refq_rdf Refq_saturation Refq_storage Saturate Term Triple Vocab
