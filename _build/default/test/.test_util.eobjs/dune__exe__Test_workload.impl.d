test/test_workload.ml: Alcotest Closure Dblp Geo Graph List Lubm Printf Query_gen Refq_core Refq_query Refq_rdf Refq_reform Refq_schema Refq_storage Refq_workload Store Term Vocab
