test/test_datalog.ml: Alcotest Datalog Fixtures QCheck2 QCheck_alcotest Rdf_encoding Refq_datalog Refq_engine Refq_query Refq_rdf Refq_saturation Refq_storage Store Term
