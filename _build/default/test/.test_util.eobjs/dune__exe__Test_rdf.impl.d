test/test_rdf.ml: Alcotest Fixtures Graph Isomorphism List Namespace Ntriples Printf QCheck2 QCheck_alcotest Refq_rdf Term Triple Turtle Vocab
