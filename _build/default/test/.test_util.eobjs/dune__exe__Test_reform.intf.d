test/test_reform.mli:
