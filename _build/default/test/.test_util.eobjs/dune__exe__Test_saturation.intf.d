test/test_saturation.mli:
