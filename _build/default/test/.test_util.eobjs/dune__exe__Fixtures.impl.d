test/fixtures.ml: Array Cq Fmt Gen Graph List Printf QCheck2 Refq_query Refq_rdf String Term Triple Vocab
