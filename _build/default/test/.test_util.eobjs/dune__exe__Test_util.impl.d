test/test_util.ml: Alcotest Array Int Int64 List QCheck2 QCheck_alcotest Refq_util
