test/test_query.ml: Alcotest Containment Cover Cq Fixtures Graph Jucq List Namespace Option Printf QCheck2 QCheck_alcotest Refq_engine Refq_query Refq_rdf Sparql Term Ucq Vocab
