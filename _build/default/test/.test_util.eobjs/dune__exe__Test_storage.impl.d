test/test_storage.ml: Alcotest Dictionary Filename Fixtures Fmt Fun Graph List Option QCheck2 QCheck_alcotest Refq_rdf Refq_storage Stats Store String Sys Term Triple Vocab
