(* Tests for CQs, UCQs, covers, JUCQs and the SPARQL parsers. *)

open Refq_rdf
open Refq_query

let cq_eq = Alcotest.testable Cq.pp Cq.equal

let env = Namespace.add Namespace.default ~prefix:"ex" ~uri:Fixtures.ex

let test_cq_safety () =
  (match
     Cq.make ~head:[ Cq.var "x" ]
       ~body:[ Cq.atom (Cq.var "y") (Cq.cst Vocab.rdf_type) (Cq.cst Fixtures.book) ]
   with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "unsafe head accepted");
  (* Empty body with constant head is allowed (reformulation tautologies). *)
  let q = Cq.make ~head:[ Cq.cst Fixtures.book ] ~body:[] in
  Alcotest.(check int) "arity" 1 (Cq.arity q)

let test_cq_vars () =
  let q = Fixtures.borges_query in
  Alcotest.(check (list string)) "body vars" [ "x1"; "x2"; "x3"; "x4" ]
    (Cq.body_vars q);
  Alcotest.(check (list string)) "head vars" [ "x3" ] (Cq.head_vars q)

let test_subst () =
  let s = Cq.Subst.singleton "x" Fixtures.book in
  (match Cq.Subst.bind "x" Fixtures.person s with
  | None -> ()
  | Some _ -> Alcotest.fail "conflicting bind accepted");
  (match Cq.Subst.bind "x" Fixtures.book s with
  | Some _ -> ()
  | None -> Alcotest.fail "identical bind rejected");
  let s2 = Cq.Subst.singleton "y" Fixtures.person in
  (match Cq.Subst.merge s s2 with
  | Some m ->
    Alcotest.(check bool) "merged x" true
      (Option.is_some (Cq.Subst.find "x" m));
    Alcotest.(check bool) "merged y" true
      (Option.is_some (Cq.Subst.find "y" m))
  | None -> Alcotest.fail "compatible merge failed");
  let conflict = Cq.Subst.singleton "x" Fixtures.person in
  match Cq.Subst.merge s conflict with
  | None -> ()
  | Some _ -> Alcotest.fail "conflicting merge accepted"

let test_canonicalize () =
  let a v1 v2 = Cq.atom (Cq.var v1) (Cq.cst Fixtures.has_author) (Cq.var v2) in
  let q1 = Cq.make ~head:[ Cq.var "a" ] ~body:[ a "a" "b" ] in
  let q2 = Cq.make ~head:[ Cq.var "u" ] ~body:[ a "u" "v" ] in
  Alcotest.check cq_eq "alpha-equivalent" (Cq.canonicalize q1) (Cq.canonicalize q2)

let test_ucq_dedup () =
  let a v1 v2 = Cq.atom (Cq.var v1) (Cq.cst Fixtures.has_author) (Cq.var v2) in
  let q1 = Cq.make ~head:[ Cq.var "a" ] ~body:[ a "a" "b" ] in
  let q2 = Cq.make ~head:[ Cq.var "u" ] ~body:[ a "u" "v" ] in
  let u = Ucq.of_disjuncts [ q1; q2 ] in
  Alcotest.(check int) "deduplicated" 1 (Ucq.size u)

let test_ucq_ops () =
  let a v1 v2 = Cq.atom (Cq.var v1) (Cq.cst Fixtures.has_author) (Cq.var v2) in
  let b v1 v2 = Cq.atom (Cq.var v1) (Cq.cst Fixtures.has_name) (Cq.var v2) in
  let q1 = Cq.make ~head:[ Cq.var "x" ] ~body:[ a "x" "y" ] in
  let q2 = Cq.make ~head:[ Cq.var "x" ] ~body:[ b "x" "y" ] in
  let u1 = Ucq.of_disjuncts [ q1 ] and u2 = Ucq.of_disjuncts [ q2 ] in
  let u = Ucq.union u1 u2 in
  Alcotest.(check int) "union size" 2 (Ucq.size u);
  Alcotest.(check int) "arity" 1 (Ucq.arity u);
  Alcotest.(check int) "total atoms" 2 (Ucq.total_atoms u);
  (match Ucq.of_disjuncts [] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "empty union accepted");
  let q3 = Cq.make ~head:[ Cq.var "x"; Cq.var "y" ] ~body:[ a "x" "y" ] in
  match Ucq.union u1 (Ucq.of_disjuncts [ q3 ]) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "mixed arities accepted"

let test_jucq_sizes () =
  let atom = Cq.atom (Cq.var "x") (Cq.cst Fixtures.has_author) (Cq.var "y") in
  let frag n =
    {
      Jucq.out = [ "x" ];
      ucq =
        Ucq.of_disjuncts
          (List.init n (fun i ->
               Cq.make ~head:[ Cq.var "x" ]
                 ~body:
                   [
                     atom;
                     Cq.atom (Cq.var "x")
                       (Cq.cst (Fixtures.uri (Printf.sprintf "p%d" i)))
                       (Cq.var "z");
                   ]));
    }
  in
  let j = Jucq.make ~head:[ Cq.var "x" ] ~fragments:[ frag 3; frag 2 ] in
  Alcotest.(check int) "size" 5 (Jucq.size j);
  Alcotest.(check int) "fragments" 2 (Jucq.n_fragments j);
  Alcotest.(check int) "max fragment" 3 (Jucq.max_fragment_size j)

let test_cover_validation () =
  (match Cover.make ~n_atoms:3 [ [ 0 ]; [ 1 ] ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "uncovered atom accepted");
  (match Cover.make ~n_atoms:2 [ [ 0; 5 ]; [ 1 ] ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "out-of-range accepted");
  let c = Cover.make ~n_atoms:3 [ [ 0; 1 ]; [ 1; 2 ] ] in
  Alcotest.(check int) "fragments" 2 (Cover.n_fragments c)

let test_cover_special () =
  let s = Cover.singleton ~n_atoms:3 in
  Alcotest.(check bool) "singleton" true (Cover.is_singleton s);
  Alcotest.(check int) "3 fragments" 3 (Cover.n_fragments s);
  let o = Cover.one_fragment ~n_atoms:3 in
  Alcotest.(check bool) "one fragment" true (Cover.is_one_fragment o);
  Alcotest.(check bool) "different" false (Cover.equal s o)

let test_cover_normalize () =
  let c = Cover.make ~n_atoms:3 [ [ 0 ]; [ 0; 1 ]; [ 2 ] ] in
  let n = Cover.normalize c in
  Alcotest.(check int) "subsumed dropped" 2 (Cover.n_fragments n)

let test_cover_add_atom () =
  let c = Cover.singleton ~n_atoms:3 in
  let c' = Cover.add_atom c ~frag:0 ~atom:1 in
  Alcotest.(check int) "still 3 fragments" 3 (Cover.n_fragments c');
  Alcotest.(check bool) "contains {0,1}" true
    (List.mem [ 0; 1 ] (Cover.fragments c'))

let test_fragment_cq () =
  (* Example 1 cover {t1,t3}: output variables are those shared with the
     rest of the query or distinguished. *)
  let q = Fixtures.borges_query in
  let f = Cover.fragment_cq q [ 0; 1 ] in
  (* atoms 0,1: vars x1 x2 x3; x3 distinguished, x1 shared with atom 2; x2
     internal. *)
  Alcotest.(check (list string)) "out vars" [ "x1"; "x3" ] (Cq.head_vars f);
  Alcotest.(check int) "2 atoms" 2 (List.length f.Cq.body)

let test_sparql_parse () =
  let text =
    {|PREFIX ex: <http://example.org/>
      SELECT ?x ?t WHERE { ?x a ex:Book . ?x ex:hasTitle ?t }|}
  in
  match Sparql.parse ~env text with
  | Ok q ->
    Alcotest.(check (list string)) "head" [ "x"; "t" ] (Cq.head_vars q);
    Alcotest.(check int) "2 atoms" 2 (List.length q.Cq.body);
    Alcotest.(check bool) "a = rdf:type" true
      (List.exists
         (fun a -> Cq.pat_equal a.Cq.p (Cq.cst Vocab.rdf_type))
         q.Cq.body)
  | Error e -> Alcotest.failf "parse: %a" Sparql.pp_error e

let test_sparql_star () =
  match Sparql.parse ~env "SELECT * WHERE { ?x ex:hasTitle ?t }" with
  | Ok q -> Alcotest.(check (list string)) "star head" [ "x"; "t" ] (Cq.head_vars q)
  | Error e -> Alcotest.failf "parse: %a" Sparql.pp_error e

let test_sparql_literals () =
  match
    Sparql.parse ~env
      {|SELECT ?x WHERE { ?x ex:publishedIn "1949" . ?x ex:pages 42 }|}
  with
  | Ok q ->
    Alcotest.(check int) "atoms" 2 (List.length q.Cq.body);
    Alcotest.(check bool) "plain literal" true
      (List.exists
         (fun a -> Cq.pat_equal a.Cq.o (Cq.cst (Term.literal "1949")))
         q.Cq.body)
  | Error e -> Alcotest.failf "parse: %a" Sparql.pp_error e

let test_sparql_errors () =
  (match Sparql.parse ~env "SELECT ?x WHERE { }" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "empty BGP accepted");
  (match Sparql.parse ~env "SELECT ?y WHERE { ?x ex:p ?z }" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unsafe projection accepted");
  match Sparql.parse ~env "SELECT ?x { ?x nope:p ?z }" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unbound prefix accepted"

let test_sparql_union () =
  let text =
    {|PREFIX ex: <http://example.org/>
      SELECT ?x WHERE {
        { ?x a ex:Book }
        UNION
        { ?x a ex:Publication }
        UNION
        { ?x ex:writtenBy _:w }
      }|}
  in
  match Sparql.parse_select ~env text with
  | Ok u ->
    Alcotest.(check int) "three disjuncts" 3 (Ucq.size u);
    Alcotest.(check int) "arity" 1 (Ucq.arity u)
  | Error e -> Alcotest.failf "union: %a" Sparql.pp_error e

let test_sparql_union_single_block () =
  match Sparql.parse_select ~env "SELECT ?x WHERE { ?x a <http://e/C> }" with
  | Ok u -> Alcotest.(check int) "one disjunct" 1 (Ucq.size u)
  | Error e -> Alcotest.failf "single: %a" Sparql.pp_error e

let test_sparql_union_star_rejected () =
  match
    Sparql.parse_select ~env
      "SELECT * WHERE { { ?x a <http://e/C> } UNION { ?y a <http://e/D> } }"
  with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "star over UNION accepted"

let test_sparql_bnode_pattern () =
  (* A blank node behaves as an existential: the query below asks for
     subjects having *some* author. *)
  match Sparql.parse ~env "SELECT ?x WHERE { ?x ex:hasAuthor _:a }" with
  | Ok q ->
    Alcotest.(check (list string)) "only x distinguished" [ "x" ] (Cq.head_vars q);
    Alcotest.(check int) "two vars in body" 2
      (List.length (Cq.body_vars q))
  | Error e -> Alcotest.failf "bnode: %a" Sparql.pp_error e

let test_sparql_ask () =
  match Sparql.parse_ask ~env "ASK WHERE { ?x a ex:Book }" with
  | Ok q ->
    Alcotest.(check bool) "boolean" true (Cq.is_boolean q);
    Alcotest.(check int) "one atom" 1 (List.length q.Cq.body)
  | Error e -> Alcotest.failf "ask: %a" Sparql.pp_error e

let test_notation_parse () =
  let text = {|q(x3) :- x1 ex:hasAuthor x2, x2 ex:hasName x3, x1 x4 "1949"|} in
  match Sparql.parse_notation ~env text with
  | Ok q -> Alcotest.check cq_eq "paper notation" Fixtures.borges_query q
  | Error e -> Alcotest.failf "notation: %a" Sparql.pp_error e

let test_sparql_roundtrip () =
  let text = Sparql.to_sparql ~env Fixtures.borges_query in
  match Sparql.parse ~env text with
  | Ok q ->
    Alcotest.check cq_eq "roundtrip" (Cq.canonicalize Fixtures.borges_query)
      (Cq.canonicalize q)
  | Error e -> Alcotest.failf "roundtrip: %a\n%s" Sparql.pp_error e text

let test_jucq_validation () =
  let atom = Cq.atom (Cq.var "x") (Cq.cst Fixtures.has_author) (Cq.var "y") in
  let f =
    {
      Jucq.out = [ "x" ];
      ucq = Ucq.of_disjuncts [ Cq.make ~head:[ Cq.var "x" ] ~body:[ atom ] ];
    }
  in
  (match Jucq.make ~head:[ Cq.var "z" ] ~fragments:[ f ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "unproduced head var accepted");
  let j = Jucq.make ~head:[ Cq.var "x" ] ~fragments:[ f ] in
  Alcotest.(check int) "size" 1 (Jucq.size j)

(* ------------------------------------------------------------------ *)
(* Containment and minimization                                        *)
(* ------------------------------------------------------------------ *)

let atom_t v1 c = Cq.atom (Cq.var v1) (Cq.cst Vocab.rdf_type) (Cq.cst c)
let atom_p v1 p v2 = Cq.atom (Cq.var v1) (Cq.cst p) (Cq.var v2)

let test_containment_basic () =
  (* q1(x) :- x type Book, x hasAuthor y   ⊑   q2(x) :- x type Book *)
  let q1 =
    Cq.make ~head:[ Cq.var "x" ]
      ~body:[ atom_t "x" Fixtures.book; atom_p "x" Fixtures.has_author "y" ]
  in
  let q2 = Cq.make ~head:[ Cq.var "x" ] ~body:[ atom_t "x" Fixtures.book ] in
  Alcotest.(check bool) "q1 ⊑ q2" true (Containment.contained q1 q2);
  Alcotest.(check bool) "q2 ⋢ q1" false (Containment.contained q2 q1);
  Alcotest.(check bool) "not equivalent" false (Containment.equivalent q1 q2)

let test_containment_head_matters () =
  (* Same bodies, different head variables: not contained. *)
  let body = [ atom_p "x" Fixtures.has_author "y" ] in
  let qx = Cq.make ~head:[ Cq.var "x" ] ~body in
  let qy = Cq.make ~head:[ Cq.var "y" ] ~body in
  Alcotest.(check bool) "x-head ⋢ y-head" false (Containment.contained qx qy)

let test_containment_alpha () =
  let q1 =
    Cq.make ~head:[ Cq.var "a" ] ~body:[ atom_p "a" Fixtures.has_author "b" ]
  in
  let q2 =
    Cq.make ~head:[ Cq.var "u" ] ~body:[ atom_p "u" Fixtures.has_author "v" ]
  in
  Alcotest.(check bool) "alpha-equivalent" true (Containment.equivalent q1 q2)

let test_minimize_cq () =
  (* q(x) :- x hasAuthor y, x hasAuthor z  minimizes to one atom. *)
  let q =
    Cq.make ~head:[ Cq.var "x" ]
      ~body:[ atom_p "x" Fixtures.has_author "y"; atom_p "x" Fixtures.has_author "z" ]
  in
  let m = Containment.minimize_cq q in
  Alcotest.(check int) "one atom left" 1 (List.length m.Cq.body);
  Alcotest.(check bool) "still equivalent" true (Containment.equivalent q m)

let test_minimize_cq_keeps_needed () =
  let q =
    Cq.make ~head:[ Cq.var "x" ]
      ~body:[ atom_t "x" Fixtures.book; atom_p "x" Fixtures.has_author "y" ]
  in
  let m = Containment.minimize_cq q in
  Alcotest.(check int) "nothing droppable" 2 (List.length m.Cq.body)

let test_minimize_ucq () =
  (* The broader disjunct subsumes the narrower one... containment is the
     other way: narrow ⊑ broad, so the narrow disjunct is redundant. *)
  let narrow =
    Cq.make ~head:[ Cq.var "x" ]
      ~body:[ atom_t "x" Fixtures.book; atom_p "x" Fixtures.has_author "y" ]
  in
  let broad = Cq.make ~head:[ Cq.var "x" ] ~body:[ atom_t "x" Fixtures.book ] in
  let u = Ucq.of_disjuncts [ narrow; broad ] in
  let m = Containment.minimize_ucq u in
  Alcotest.(check int) "redundant disjunct dropped" 1 (Ucq.size m);
  Alcotest.(check bool) "kept the broad one" true
    (List.exists
       (fun q -> List.length q.Cq.body = 1)
       (Ucq.disjuncts m))

let test_freeze () =
  let q =
    Cq.make ~head:[ Cq.var "x" ]
      ~body:[ atom_t "x" Fixtures.book; atom_p "x" Fixtures.has_author "y" ]
  in
  let g, head = Containment.freeze q in
  Alcotest.(check int) "two frozen triples" 2 (Graph.cardinal g);
  Alcotest.(check int) "head frozen" 1 (List.length head)

(* Properties: containment is reflexive and transitive; minimization
   preserves answers on random graphs. *)
let prop_containment_reflexive =
  QCheck2.Test.make ~name:"containment reflexive" ~count:100
    ~print:Fixtures.print_cq Fixtures.gen_cq (fun q ->
      Containment.contained q q)

let prop_minimize_ucq_preserves =
  QCheck2.Test.make ~name:"minimize_ucq preserves answers" ~count:100
    ~print:Fixtures.print_graph_and_cq Fixtures.gen_graph_and_cq
    (fun (g, q) ->
      let q2 = Cq.canonicalize q in
      let u = Ucq.of_disjuncts [ q; q2 ] in
      let m = Containment.minimize_ucq u in
      Refq_engine.Naive.ucq g m = Refq_engine.Naive.ucq g u)

let prop_minimize_cq_preserves =
  QCheck2.Test.make ~name:"minimize_cq preserves answers" ~count:100
    ~print:Fixtures.print_graph_and_cq Fixtures.gen_graph_and_cq
    (fun (g, q) ->
      let m = Containment.minimize_cq q in
      Refq_engine.Naive.cq g m = Refq_engine.Naive.cq g q)

let gen_garbage =
  QCheck2.Gen.(string_size ~gen:printable (int_range 0 200))

let prop_sparql_total =
  QCheck2.Test.make ~name:"SPARQL parser is total" ~count:500
    ~print:(Printf.sprintf "%S") gen_garbage (fun text ->
      (match Sparql.parse ~env text with Ok _ | Error _ -> true)
      && (match Sparql.parse_select ~env text with Ok _ | Error _ -> true)
      && match Sparql.parse_notation ~env text with Ok _ | Error _ -> true)

let prop_sparql_roundtrip =
  QCheck2.Test.make ~name:"SPARQL print/parse roundtrip" ~count:100
    ~print:Fixtures.print_cq Fixtures.gen_cq (fun q ->
      (* Boolean CQs have no SELECT form in the conjunctive subset. *)
      Cq.is_boolean q
      ||
      match Sparql.parse ~env (Sparql.to_sparql ~env q) with
      | Ok q' -> Cq.equal (Cq.canonicalize q) (Cq.canonicalize q')
      | Error _ -> false)

let () =
  Alcotest.run "query"
    [
      ( "cq",
        [
          Alcotest.test_case "safety" `Quick test_cq_safety;
          Alcotest.test_case "vars" `Quick test_cq_vars;
          Alcotest.test_case "substitutions" `Quick test_subst;
          Alcotest.test_case "canonicalize" `Quick test_canonicalize;
        ] );
      ( "ucq",
        [
          Alcotest.test_case "dedup" `Quick test_ucq_dedup;
          Alcotest.test_case "union/arity/atoms" `Quick test_ucq_ops;
        ] );
      ( "cover",
        [
          Alcotest.test_case "validation" `Quick test_cover_validation;
          Alcotest.test_case "singleton/one-fragment" `Quick test_cover_special;
          Alcotest.test_case "normalize" `Quick test_cover_normalize;
          Alcotest.test_case "add_atom" `Quick test_cover_add_atom;
          Alcotest.test_case "fragment CQ" `Quick test_fragment_cq;
        ] );
      ( "jucq",
        [
          Alcotest.test_case "validation" `Quick test_jucq_validation;
          Alcotest.test_case "sizes" `Quick test_jucq_sizes;
        ] );
      ( "containment",
        [
          Alcotest.test_case "basic" `Quick test_containment_basic;
          Alcotest.test_case "head matters" `Quick test_containment_head_matters;
          Alcotest.test_case "alpha equivalence" `Quick test_containment_alpha;
          Alcotest.test_case "minimize CQ" `Quick test_minimize_cq;
          Alcotest.test_case "minimize keeps needed atoms" `Quick
            test_minimize_cq_keeps_needed;
          Alcotest.test_case "minimize UCQ" `Quick test_minimize_ucq;
          Alcotest.test_case "freeze" `Quick test_freeze;
          QCheck_alcotest.to_alcotest prop_containment_reflexive;
          QCheck_alcotest.to_alcotest prop_minimize_ucq_preserves;
          QCheck_alcotest.to_alcotest prop_minimize_cq_preserves;
        ] );
      ( "sparql",
        [
          Alcotest.test_case "parse" `Quick test_sparql_parse;
          Alcotest.test_case "select *" `Quick test_sparql_star;
          Alcotest.test_case "literals" `Quick test_sparql_literals;
          Alcotest.test_case "errors" `Quick test_sparql_errors;
          Alcotest.test_case "paper notation" `Quick test_notation_parse;
          Alcotest.test_case "UNION" `Quick test_sparql_union;
          Alcotest.test_case "UNION single block" `Quick
            test_sparql_union_single_block;
          Alcotest.test_case "star over UNION rejected" `Quick
            test_sparql_union_star_rejected;
          Alcotest.test_case "blank node pattern" `Quick test_sparql_bnode_pattern;
          Alcotest.test_case "ASK" `Quick test_sparql_ask;
          Alcotest.test_case "roundtrip" `Quick test_sparql_roundtrip;
          QCheck_alcotest.to_alcotest prop_sparql_roundtrip;
          QCheck_alcotest.to_alcotest prop_sparql_total;
        ] );
    ]
