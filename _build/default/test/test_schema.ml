(* Tests for RDFS schemas and their closure. *)

open Refq_rdf
open Refq_schema

let u = Fixtures.uri

let tset = Alcotest.testable (Fmt.Dump.iter Term.Set.iter (Fmt.any "set") Term.pp) Term.Set.equal

let set_of l = Term.Set.of_list l

let test_of_graph () =
  let s = Schema.of_graph Fixtures.borges_graph in
  Alcotest.(check int) "4 constraints" 4 (Schema.cardinal s);
  Alcotest.(check bool) "subclass present" true
    (Schema.mem (Schema.subclass Fixtures.book Fixtures.publication) s);
  Alcotest.(check bool) "range present" true
    (Schema.mem (Schema.range Fixtures.written_by Fixtures.person) s)

let test_of_graph_ignores_malformed () =
  let g =
    Graph.of_list
      [
        Triple.make (Term.literal "x") Vocab.rdfs_subclassof (u "C");
        Triple.make (u "C") Vocab.rdfs_domain (Term.literal "y");
      ]
  in
  Alcotest.(check int) "malformed ignored" 0 (Schema.cardinal (Schema.of_graph g))

let test_roundtrip () =
  let s = Schema.of_graph Fixtures.borges_graph in
  let s' = Schema.of_graph (Schema.to_graph s) in
  Alcotest.(check int) "roundtrip" (Schema.cardinal s) (Schema.cardinal s')

(* A deeper hierarchy:
   C1 ⊑ C2 ⊑ C3,  p1 ⊑ p2,  domain(p2) = C1,  range(p2) = C2 *)
let chain_schema =
  Schema.of_list
    [
      Schema.subclass (u "C1") (u "C2");
      Schema.subclass (u "C2") (u "C3");
      Schema.subproperty (u "p1") (u "p2");
      Schema.domain (u "p2") (u "C1");
      Schema.range (u "p2") (u "C2");
    ]

let test_closure_transitivity () =
  let cl = Closure.of_schema chain_schema in
  Alcotest.check tset "superclasses C1"
    (set_of [ u "C2"; u "C3" ])
    (Closure.superclasses cl (u "C1"));
  Alcotest.check tset "subclasses C3"
    (set_of [ u "C1"; u "C2" ])
    (Closure.subclasses cl (u "C3"));
  Alcotest.(check bool) "is_subclass" true (Closure.is_subclass cl (u "C1") (u "C3"));
  Alcotest.(check bool) "not reflexive" false (Closure.is_subclass cl (u "C1") (u "C1"))

let test_closure_domain_range () =
  let cl = Closure.of_schema chain_schema in
  (* p1 inherits p2's domain/range; both propagate up the class chain. *)
  Alcotest.check tset "domains p1"
    (set_of [ u "C1"; u "C2"; u "C3" ])
    (Closure.domains cl (u "p1"));
  Alcotest.check tset "ranges p1"
    (set_of [ u "C2"; u "C3" ])
    (Closure.ranges cl (u "p1"));
  Alcotest.check tset "props with domain C3"
    (set_of [ u "p1"; u "p2" ])
    (Closure.props_with_domain cl (u "C3"));
  Alcotest.check tset "props with range C2"
    (set_of [ u "p1"; u "p2" ])
    (Closure.props_with_range cl (u "C2"))

let test_closure_cycle () =
  let s =
    Schema.of_list
      [ Schema.subclass (u "A") (u "B"); Schema.subclass (u "B") (u "A") ]
  in
  let cl = Closure.of_schema s in
  (* A cycle makes each class a superclass of the other; rdfs11 then also
     entails the reflexive pairs, which the pair list surfaces. *)
  Alcotest.(check bool) "A ⊑ B" true (Closure.is_subclass cl (u "A") (u "B"));
  Alcotest.(check bool) "B ⊑ A" true (Closure.is_subclass cl (u "B") (u "A"));
  let pairs = Closure.subclass_pairs cl in
  Alcotest.(check bool) "entailed A⊑A present" true
    (List.exists (fun (a, b) -> Term.equal a (u "A") && Term.equal b (u "A")) pairs)

let test_closure_idempotent () =
  let cl = Closure.of_schema chain_schema in
  let closed = Closure.closed_schema cl in
  let cl2 = Closure.of_schema closed in
  Alcotest.(check int) "closure idempotent" (Closure.size cl) (Closure.size cl2)

let test_entailed_graph () =
  let cl = Closure.of_schema chain_schema in
  let g = Closure.entailed_schema_graph cl in
  Alcotest.(check bool) "entailed C1 ⊑ C3" true
    (Graph.mem (Triple.make (u "C1") Vocab.rdfs_subclassof (u "C3")) g);
  Alcotest.(check bool) "entailed domain(p1)=C3" true
    (Graph.mem (Triple.make (u "p1") Vocab.rdfs_domain (u "C3")) g)

let prop_closure_monotone =
  QCheck2.Test.make ~name:"closure contains declared constraints" ~count:100
    ~print:Fixtures.print_graph Fixtures.gen_graph (fun g ->
      let s = Schema.of_graph g in
      let cl = Closure.of_schema s in
      let closed = Closure.closed_schema cl in
      Schema.fold (fun c acc -> acc && Schema.mem c closed) s true)

let prop_closure_idempotent =
  QCheck2.Test.make ~name:"closure idempotent" ~count:100
    ~print:Fixtures.print_graph Fixtures.gen_graph (fun g ->
      let cl = Closure.of_graph g in
      let cl2 = Closure.of_schema (Closure.closed_schema cl) in
      Schema.to_list (Closure.closed_schema cl)
      = Schema.to_list (Closure.closed_schema cl2))

let prop_closure_transitive =
  QCheck2.Test.make ~name:"subclass pairs transitively closed" ~count:100
    ~print:Fixtures.print_graph Fixtures.gen_graph (fun g ->
      let cl = Closure.of_graph g in
      let pairs = Closure.subclass_pairs cl in
      List.for_all
        (fun (a, b) ->
          List.for_all
            (fun (b', c) ->
              (not (Term.equal b b')) || Term.equal a c
              || List.exists
                   (fun (x, y) -> Term.equal x a && Term.equal y c)
                   pairs)
            pairs)
        pairs)

let () =
  Alcotest.run "schema"
    [
      ( "schema",
        [
          Alcotest.test_case "of_graph" `Quick test_of_graph;
          Alcotest.test_case "malformed" `Quick test_of_graph_ignores_malformed;
          Alcotest.test_case "roundtrip" `Quick test_roundtrip;
        ] );
      ( "closure",
        [
          Alcotest.test_case "transitivity" `Quick test_closure_transitivity;
          Alcotest.test_case "domain/range" `Quick test_closure_domain_range;
          Alcotest.test_case "cycles" `Quick test_closure_cycle;
          Alcotest.test_case "idempotent" `Quick test_closure_idempotent;
          Alcotest.test_case "entailed graph" `Quick test_entailed_graph;
          QCheck_alcotest.to_alcotest prop_closure_monotone;
          QCheck_alcotest.to_alcotest prop_closure_idempotent;
          QCheck_alcotest.to_alcotest prop_closure_transitive;
        ] );
    ]
