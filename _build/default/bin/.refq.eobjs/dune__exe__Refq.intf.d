bin/refq.mli:
