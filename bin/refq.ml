(* refq — reformulation-based RDF query answering, command line interface.

   Mirrors the demonstration scenario of the paper:
     refq generate  — build a synthetic dataset (lubm / dblp / geo)
     refq stats     — step 1: visualize dataset statistics
     refq answer    — step 2: answer a query through a chosen strategy
     refq explain   — step 3: inspect reformulations, covers, GCov's space
     refq saturate  — materialize the saturation (the Sat technique)
*)

open Cmdliner
open Refq_rdf
open Refq_query
open Refq_storage
open Refq_core

(* [Refq_rdf.Term] shadows [Cmdliner.Term]; restore the latter for the
   command definitions below (RDF terms are only used qualified here). *)
module Term = Cmdliner.Term
module Obs = Refq_obs.Obs
module Persist = Refq_persist.Persist
module Io = Refq_fault.Io
module Par = Refq_par.Par
module Session = Refq_serve.Session
module Serve = Refq_serve.Serve
module Conc_trace = Refq_analysis.Conc_trace
module Check_conc = Refq_analysis.Check_conc

(* ------------------------------------------------------------------ *)
(* Loading and saving                                                  *)
(* ------------------------------------------------------------------ *)

let workload_env =
  List.fold_left
    (fun env (prefix, uri) -> Namespace.add env ~prefix ~uri)
    Namespace.default
    [
      ("ub", Refq_workload.Lubm.ns);
      ("dblp", Refq_workload.Dblp.ns);
      ("geo", Refq_workload.Geo.ns);
      ("ex", "http://example.org/");
    ]

let die fmt = Fmt.kstr (fun m -> `Error (false, m)) fmt

let known_prefixes () =
  String.concat ", "
    (List.sort compare
       (Namespace.fold (fun prefix _ acc -> prefix :: acc) workload_env []))

let load_graph path =
  if Filename.check_suffix path ".ttl" then
    Result.map_error
      (fun e -> Fmt.str "%s: %a" path Turtle.pp_error e)
      (Turtle.parse_file ~env:workload_env path)
  else
    Result.map_error
      (fun e -> Fmt.str "%s: %a" path Ntriples.pp_error e)
      (Ntriples.parse_file path)

let load_store path =
  if Filename.check_suffix path ".store" then Store.load path
  else Result.map Store.of_graph (load_graph path)

let parse_query text =
  (* Accept SPARQL SELECT / ASK and the paper's q(x) :- ... notation. *)
  let trimmed = String.trim text in
  let upper = String.uppercase_ascii trimmed in
  let starts_with prefix =
    String.length upper >= String.length prefix
    && String.sub upper 0 (String.length prefix) = prefix
  in
  if starts_with "ASK" then Sparql.parse_ask ~env:workload_env text
  else if
    String.length trimmed > 0
    && (trimmed.[0] = 'q' || trimmed.[0] = 'Q')
    && String.contains trimmed '-'
    && not (starts_with "SELECT")
  then Sparql.parse_notation ~env:workload_env text
  else Sparql.parse ~env:workload_env text

let contains_word ~word text =
  let re = String.uppercase_ascii text in
  let n = String.length word and m = String.length re in
  let rec loop i = i + n <= m && (String.sub re i n = word || loop (i + 1)) in
  loop 0

(* A one-line parse diagnostic; unbound-prefix errors additionally list
   the prefixes the CLI environment actually knows. *)
let query_error e =
  let msg = Fmt.str "query: %a" Sparql.pp_error e in
  if contains_word ~word:"UNBOUND PREFIX" msg then
    `Error (false, Fmt.str "%s (known prefixes: %s)" msg (known_prefixes ()))
  else `Error (false, msg)

let read_query ~query ~query_file =
  match query, query_file with
  | Some q, None -> Ok q
  | None, Some path ->
    let ic = open_in path in
    let n = in_channel_length ic in
    let text = really_input_string ic n in
    close_in ic;
    Ok text
  | Some _, Some _ -> Error "use either --query or --query-file, not both"
  | None, None -> Error "a query is required (--query or --query-file)"

let parse_cover ~n_atoms spec =
  (* "1,3;3,5;2,4;4,6" with 1-based atom numbers, as printed by the paper *)
  try
    let fragments =
      String.split_on_char ';' spec
      |> List.map (fun frag ->
             String.split_on_char ',' frag
             |> List.map (fun s -> int_of_string (String.trim s) - 1))
    in
    Ok (Cover.make ~n_atoms fragments)
  with
  | Invalid_argument m -> Error m
  | Failure _ -> Error (Printf.sprintf "cannot parse cover spec %S" spec)

(* ------------------------------------------------------------------ *)
(* generate                                                            *)
(* ------------------------------------------------------------------ *)

let generate_cmd =
  let run workload scale seed output =
    let seed = Int64.of_int seed in
    let store =
      match workload with
      | "lubm" -> Ok (Refq_workload.Lubm.generate ~seed ~scale ())
      | "dblp" -> Ok (Refq_workload.Dblp.generate ~seed ~scale ())
      | "geo" -> Ok (Refq_workload.Geo.generate ~seed ~scale ())
      | other -> Error (Printf.sprintf "unknown workload %S" other)
    in
    match store with
    | Error m -> `Error (false, m)
    | Ok store ->
      (match output with
      | Some path when Filename.check_suffix path ".store" ->
        Store.save store path;
        Fmt.pr "wrote %d triples to %s (binary)@." (Store.size store) path
      | Some path ->
        Ntriples.write_file path (Store.to_graph store);
        Fmt.pr "wrote %d triples to %s@." (Store.size store) path
      | None -> Fmt.pr "%a@." Graph.pp (Store.to_graph store));
      `Ok ()
  in
  let workload =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"WORKLOAD" ~doc:"Workload: lubm, dblp or geo.")
  in
  let scale =
    Arg.(value & opt int 1 & info [ "scale" ] ~doc:"Generator scale factor.")
  in
  let seed =
    Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Deterministic seed.")
  in
  let output =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "output" ] ~docv:"FILE"
          ~doc:"Output file (.nt for N-Triples, .store for the compact                 binary format).")
  in
  Cmd.v
    (Cmd.info "generate" ~doc:"Generate a synthetic dataset (with its schema)")
    Term.(ret (const run $ workload $ scale $ seed $ output))

(* ------------------------------------------------------------------ *)
(* stats                                                               *)
(* ------------------------------------------------------------------ *)

let stats_cmd =
  let run path =
    match load_store path with
    | Error m -> `Error (false, m)
    | Ok store ->
      let stats = Stats.compute store in
      Fmt.pr "%a@." (Stats.pp (Store.dictionary store)) stats;
      `Ok ()
  in
  let path =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"FILE" ~doc:"RDF file (.nt or .ttl).")
  in
  Cmd.v
    (Cmd.info "stats"
       ~doc:"Dataset statistics (value distributions; demo step 1)")
    Term.(ret (const run $ path))

(* ------------------------------------------------------------------ *)
(* Fault-injection and budget flags (answer, federate)                 *)
(* ------------------------------------------------------------------ *)

let faults_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "faults" ] ~docv:"SPEC"
        ~doc:
          "Inject deterministic endpoint faults: ;-separated name=mode \
           entries, with mode one of healthy, dead, flaky:P, slow:P, \
           trunc:N, flap:UP:DOWN, failfirst:N — e.g. \
           \"a.nt=dead;b.nt=flap:2:1\".")

let fault_seed_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "fault-seed" ]
        ~doc:"Seed of the fault plan (same seed, same faults).")

let retries_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "retries" ]
        ~doc:
          "Total attempts per endpoint call, retried with deterministic \
           exponential backoff (default 3).")

let deadline_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "deadline" ] ~docv:"TICKS"
        ~doc:
          "Per-query deadline in simulated ticks; on expiry the answer \
           degrades to sound-but-possibly-incomplete.")

let max_rows_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "max-rows" ]
        ~doc:"Per-query cap on intermediate-relation rows.")

let make_budget ~deadline ~max_rows =
  match deadline, max_rows with
  | None, None -> None
  | _ -> Some (Refq_fault.Budget.create { Refq_fault.Budget.no_limits with deadline; max_rows })

let make_resilience ~faults ~fault_seed ~retries =
  let seed = Option.map Int64.of_int fault_seed in
  let plan =
    match faults with
    | None -> Ok Refq_fault.Fault.none
    | Some spec -> Refq_fault.Fault.parse ?seed spec
  in
  Result.map
    (fun plan ->
      let retry =
        match retries with
        | None -> Refq_fault.Retry.default
        | Some n -> Refq_fault.Retry.make n
      in
      let open Refq_federation in
      { Federation.default_resilience with plan; retry })
    plan

(* ------------------------------------------------------------------ *)
(* Persistence helpers                                                 *)
(* ------------------------------------------------------------------ *)

let report_recovery dir (r : Persist.report) =
  if Persist.clean r then
    Fmt.pr "persist: %s opened clean (epochs data=%d schema=%d)@." dir
      (fst r.Persist.recovered) (snd r.Persist.recovered)
  else Fmt.epr "persist: %s recovered with anomalies:@.%a@." dir Persist.pp_report r

(* Bring the persisted store to exactly the data file's triple set,
   streaming the term-level diff through the delta hook — one WAL record
   per effective change. Removals run first so the diff never transits
   through a state outside old..new. *)
let sync_persisted h data =
  let st = Persist.store h in
  let current = Store.to_graph st in
  let removed = ref 0 and added = ref 0 in
  Graph.iter
    (fun t ->
      if not (Graph.mem t data) then begin
        Store.remove_triple st t;
        incr removed
      end)
    current;
  Graph.iter
    (fun t ->
      if not (Graph.mem t current) then begin
        Store.add_triple st t;
        incr added
      end)
    data;
  (!added, !removed)

let make_io ~io_fault ~io_seed =
  match io_fault with
  | None -> Ok Io.real
  | Some spec ->
    Result.map
      (fun mode -> Io.make ?seed:(Option.map Int64.of_int io_seed) mode)
      (Io.parse_mode spec)

let io_fault_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "io-fault" ] ~docv:"SPEC"
        ~doc:
          "Inject an I/O fault into the persistence layer: fail:N, short:N \
           or corrupt:N (at the Nth written byte), or op:N (crash before \
           the Nth file operation). For crash-recovery testing.")

let io_seed_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "io-seed" ] ~docv:"N"
        ~doc:"Seed for the injected corruption bits (deterministic).")

let persist_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "persist" ] ~docv:"DIR"
        ~doc:
          "Persistence directory: open or crash-recover the store there \
           (a fresh directory is seeded from FILE, then mutations append \
           to the write-ahead log).")

(* ------------------------------------------------------------------ *)
(* answer                                                              *)
(* ------------------------------------------------------------------ *)

let strategy_conv ~n_atoms name cover =
  match name, cover with
  | "jucq", Some spec ->
    Result.map (fun c -> Strategy.Jucq c) (parse_cover ~n_atoms spec)
  | "jucq", None -> Error "strategy jucq requires --cover"
  | name, _ -> Strategy.of_string name

(* --explain: the chosen cover with, per fragment, the cost model's
   estimated cardinality next to the cardinality actually materialized —
   the "estimated vs actual" view of the chosen plan. *)
let explain_answer env q (r : Answer.report) =
  (* The pinned pair the result was served at — the environment's synced
     epochs, not the store's raw counters (they can run ahead of what the
     caches and statistics describe). *)
  let data, schema = Answer.epochs env in
  Fmt.pr "@.epochs: data=%d schema=%d@." data schema;
  match r.Answer.detail with
  | Answer.Saturated _ | Answer.Datalog_run _ -> ()
  | Answer.Reformulated
      { cover; fragment_cardinalities; view_hits; engines; gcov; _ } ->
    Fmt.pr "chosen cover: %a@." Cover.pp cover;
    (* One line per fragment under a non-binary --engine policy: which
       physical operator evaluated it (smoke tests grep for these,
       including the leapfrog-infeasible fallback wording). *)
    List.iteri
      (fun i op -> Fmt.pr "fragment %d operator: %s@." (i + 1) op)
      engines;
    (match
       List.concat
         (List.mapi
            (fun i hit -> if hit then [ string_of_int (i + 1) ] else [])
            view_hits)
     with
    | [] -> ()
    | served ->
      Fmt.pr "materialized views served fragment(s): %s@."
        (String.concat "," served));
    (match gcov with
    | Some trace ->
      Fmt.pr "cover search: %d covers explored in %d round(s), %a estimated cost@."
        (List.length trace.Gcov.explored)
        trace.Gcov.iterations
        Refq_cost.Cost_model.pp_estimate trace.Gcov.chosen_estimate
    | None -> ());
    let cl = Answer.closure env and cenv = Answer.card_env env in
    Fmt.pr "%-4s %-16s %12s %12s %10s@." "frag" "atoms" "est. card"
      "actual card" "est. cost";
    List.iteri
      (fun i (frag, actual) ->
        let atoms =
          String.concat "," (List.map (fun a -> string_of_int (a + 1)) frag)
        in
        match Refq_reform.Reformulate.fragment_ucq cl q frag with
        | f ->
          let e =
            Refq_cost.Cost_model.(
              fragment_estimate (fragment_profile cenv f))
          in
          Fmt.pr "%-4d %-16s %12.0f %12d %10.0f@." (i + 1) atoms
            e.Refq_cost.Cost_model.card actual e.Refq_cost.Cost_model.cost
        | exception Refq_reform.Reformulate.Too_large n ->
          Fmt.pr "%-4d %-16s %12s %12d %10s@." (i + 1) atoms
            (Printf.sprintf "(>%d CQs)" n)
            actual "—")
      (List.combine (Cover.fragments cover) fragment_cardinalities)

(* Echo what [Session.open_] did, with the exact lines the pre-session
   CLI printed (smoke scripts grep for them). *)
let report_session ~path ~persist_dir (i : Session.info) =
  (match persist_dir, i.Session.recovery with
  | Some dir, Some r ->
    report_recovery dir r;
    if i.Session.seeded > 0 then
      Fmt.pr "persist: seeded %s with %d triple(s) from %s@." dir
        i.Session.seeded path
  | _ -> ());
  let side = path ^ ".views" in
  if i.Session.views_loaded > 0 || i.Session.views_skipped > 0 then begin
    Fmt.pr "loaded %d materialized view(s) from %s@." i.Session.views_loaded
      side;
    if i.Session.views_skipped > 0 then
      Fmt.epr "views: %s: skipped %d undecodable view(s) (stale, not trusted)@."
        side i.Session.views_skipped
  end;
  match i.Session.views_error with
  | Some m -> Fmt.epr "views: ignoring %s@." m
  | None -> ()

let session_config ~path ~use_views ~domains ~persist_dir =
  let c = Session.Config.(default |> with_domains domains) in
  let c =
    match persist_dir with
    | Some dir -> Session.Config.with_persist_dir dir c
    | None -> c
  in
  if use_views then Session.Config.with_views_file (path ^ ".views") c else c

let answer_cmd =
  let run path query query_file strategy_name cover_spec profile_name all_strategies minimize backend_name engine_name format explain no_cache use_views verify domains faults fault_seed retries deadline max_rows persist_dir =
    if domains < 1 then die "--domains must be at least 1"
    else begin
    match load_store path with
    | Error m -> `Error (false, m)
    | Ok file_store -> (
      let opened =
        Session.open_
          ~config:(session_config ~path ~use_views ~domains ~persist_dir)
          ~store:file_store ()
      in
      match opened with
      | Error m -> `Error (false, m)
      | Ok session -> (
      report_session ~path ~persist_dir (Session.info session);
      let store = Session.store session in
      let env = Session.env session in
      match read_query ~query ~query_file with
      | Error m -> `Error (false, m)
      | Ok text -> (
        let union_query =
          if contains_word ~word:"UNION" text then
            Result.to_option (Sparql.parse_select ~env:workload_env text)
          else None
        in
        let parsed =
          match union_query with
          | Some u -> Ok (List.hd (Refq_query.Ucq.disjuncts u))
          | None -> parse_query text
        in
        match parsed with
        | Error e -> query_error e
        | Ok q -> (
          let profile =
            List.find_opt
              (fun p -> p.Refq_reform.Profiles.name = profile_name)
              Refq_reform.Profiles.all
          in
          match profile with
          | None -> die "unknown profile %S" profile_name
          | Some profile ->
            let backend =
              match backend_name with
              | "nested-loop" -> Ok Answer.Nested_loop
              | "sort-merge" -> Ok Answer.Sort_merge
              | other -> Error (Printf.sprintf "unknown backend %S" other)
            in
            match backend with
            | Error m -> `Error (false, m)
            | Ok backend ->
            let engine =
              match engine_name with
              | "binary" -> Ok Answer.Binary
              | "wco" -> Ok Answer.Wco
              | "auto" -> Ok Answer.Auto
              | other -> Error (Printf.sprintf "unknown engine %S" other)
            in
            match engine with
            | Error m -> `Error (false, m)
            | Ok engine ->
            let n_atoms = List.length q.Cq.body in
            let budget = make_budget ~deadline ~max_rows in
            let config =
              let c =
                Answer.Config.(
                  default |> with_profile profile |> with_minimize minimize
                  |> with_backend backend |> with_engine engine
                  |> with_cache (not no_cache)
                  |> with_verify verify)
              in
              let c = if use_views then c else Answer.Config.without_views c in
              match budget with
              | Some b -> Answer.Config.with_budget b c
              | None -> c
            in
            match make_resilience ~faults ~fault_seed ~retries with
            | Error m -> `Error (false, m)
            | Ok resilience -> (
              match faults with
              | Some _ -> (
                (* Fault injection simulates endpoint calls: route the
                   query through a single-endpoint federation named after
                   the input file, and print the degradation report. *)
                if all_strategies then
                  die "--faults runs one reformulation strategy; drop --all"
                else if union_query <> None then
                  die "--faults does not support UNION queries"
                else
                  match strategy_conv ~n_atoms strategy_name cover_spec with
                  | Error m -> `Error (false, m)
                  | Ok s -> (
                    let open Refq_federation in
                    let fed_strategy =
                      match s with
                      | Strategy.Ucq -> Ok Federation.Ucq
                      | Strategy.Scq -> Ok Federation.Scq
                      | Strategy.Jucq c -> Ok (Federation.Cover c)
                      | Strategy.Gcov -> Ok Federation.Gcov
                      | (Strategy.Saturation | Strategy.Datalog) as local ->
                        Error
                          (Printf.sprintf
                             "strategy %s answers locally, not through \
                              endpoint calls; --faults needs ucq, scq, jucq \
                              or gcov"
                             (Strategy.name local))
                    in
                    match fed_strategy with
                    | Error m -> `Error (false, m)
                    | Ok strategy ->
                      let name = Filename.basename path in
                      let fed =
                        Federation.of_graphs
                          [ (name, Store.to_graph store, None) ]
                      in
                      let rel, report =
                        Federation.answer_ref
                          ~config:
                            {
                              Federation.Config.answer = config;
                              strategy;
                              resilience;
                            }
                          fed q
                      in
                      Fmt.pr "%s (endpoint %S): %d answer(s)@."
                        (Strategy.name s) name
                        (Refq_engine.Relation.cardinality rel);
                      Fmt.pr "%a@." Answer.pp_federation_report report;
                      let dict = Federation.dictionary fed in
                      (match format with
                      | "json" ->
                        print_endline (Refq_engine.Results.to_json dict rel)
                      | "csv" ->
                        print_string (Refq_engine.Results.to_csv dict rel)
                      | "tsv" ->
                        print_string (Refq_engine.Results.to_tsv dict rel)
                      | _ ->
                        List.iter
                          (fun row ->
                            Fmt.pr "  %a@."
                              (Fmt.list ~sep:(Fmt.any " | ")
                                 (Namespace.pp_term workload_env))
                              row)
                          (Federation.decode fed rel));
                      `Ok ()))
              | None -> (
                let strategies =
                  if all_strategies then Ok Strategy.all_fixed
                  else
                    Result.map
                      (fun s -> [ s ])
                      (strategy_conv ~n_atoms strategy_name cover_spec)
                in
                match strategies with
                | Error m -> `Error (false, m)
                | Ok strategies ->
                  let dict = Store.dictionary store in
                  let show_rows rel =
                    match format with
                    | "text" ->
                      List.iter
                        (fun row ->
                          Fmt.pr "  %a@."
                            (Fmt.list ~sep:(Fmt.any " | ")
                               (Namespace.pp_term workload_env))
                            row)
                        (Answer.decode env rel)
                    | "json" ->
                      print_endline (Refq_engine.Results.to_json dict rel)
                    | "csv" -> print_string (Refq_engine.Results.to_csv dict rel)
                    | "tsv" -> print_string (Refq_engine.Results.to_tsv dict rel)
                    | other -> Fmt.epr "unknown format %S, using text@." other
                  in
                  List.iter
                    (fun s ->
                      match union_query with
                      | Some u -> (
                        match Session.answer_union ~config session u s with
                        | Ok (rel, reports) ->
                          Fmt.pr "%s (union of %d BGPs): %d answers@."
                            (Strategy.name s) (List.length reports)
                            (Refq_engine.Relation.cardinality rel);
                          if not all_strategies then show_rows rel
                        | Error f ->
                          Fmt.pr "%s: FAILED: %s@."
                            (Strategy.name f.Answer.f_strategy)
                            f.Answer.reason)
                      | None -> (
                        match Session.answer ~config session q s with
                        | Ok r ->
                          Fmt.pr "%a@." Answer.pp_report r;
                          if explain then explain_answer env q r;
                          if not all_strategies then show_rows r.Answer.answers
                        | Error f ->
                          Fmt.pr "%s: FAILED after %.3fs: %s@."
                            (Strategy.name f.Answer.f_strategy)
                            f.Answer.f_reformulation_s f.Answer.reason))
                    strategies;
                  `Ok ()))))))
    end
  in
  let path =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"FILE" ~doc:"RDF file (.nt or .ttl).")
  in
  let query =
    Arg.(
      value
      & opt (some string) None
      & info [ "q"; "query" ]
          ~doc:"Query (SPARQL SELECT or the paper's q(x) :- ... notation).")
  in
  let query_file =
    Arg.(
      value
      & opt (some file) None
      & info [ "query-file" ] ~doc:"File holding the query.")
  in
  let strategy =
    Arg.(
      value & opt string "gcov"
      & info [ "s"; "strategy" ]
          ~doc:"Strategy: sat, ucq, scq, jucq (with --cover), gcov, datalog.")
  in
  let cover =
    Arg.(
      value
      & opt (some string) None
      & info [ "cover" ]
          ~doc:"Cover for --strategy jucq, e.g. \"1,3;3,5;2,4;4,6\" (1-based).")
  in
  let profile =
    Arg.(
      value & opt string "complete"
      & info [ "profile" ]
          ~doc:
            "Reformulation profile: complete, hierarchies-only, \
             subclass-only, none (the partial profiles model \
             Virtuoso/AllegroGraph-style incomplete reasoning).")
  in
  let all_strategies =
    Arg.(
      value & flag
      & info [ "all" ]
          ~doc:"Run every fixed strategy and compare (demo step 2).")
  in
  let minimize =
    Arg.(
      value & flag
      & info [ "minimize" ]
          ~doc:"Drop containment-redundant disjuncts before evaluation.")
  in
  let backend =
    Arg.(
      value & opt string "nested-loop"
      & info [ "backend" ]
          ~doc:"Physical engine: nested-loop or sort-merge.")
  in
  let engine =
    Arg.(
      value & opt string "binary"
      & info [ "engine" ]
          ~doc:
            "Join operator: binary (the backend's join trees), wco \
             (worst-case-optimal leapfrog triejoin, falling back per \
             fragment when no feasible variable order exists) or auto \
             (per-fragment cost-based choice between the two).")
  in
  let format =
    Arg.(
      value & opt string "text"
      & info [ "format" ]
          ~doc:"Answer rendering: text, json (SPARQL results JSON), csv or                 tsv.")
  in
  let explain =
    Arg.(
      value & flag
      & info [ "explain" ]
          ~doc:
            "After answering, print the chosen cover and the per-fragment \
             estimated vs actual cardinalities.")
  in
  let no_cache =
    Arg.(
      value & flag
      & info [ "no-cache" ]
          ~doc:
            "Disable the answering caches (reformulation, cover, fragment \
             results) for this run.")
  in
  let use_views =
    Arg.(
      value
      & vflag true
          [
            ( true,
              info [ "views" ]
                ~doc:
                  "Consult a materialized-view sidecar (FILE.views) when \
                   answering — the default; a missing sidecar is a no-op." );
            ( false,
              info [ "no-views" ]
                ~doc:"Never consult materialized views for this run." );
          ])
  in
  let verify =
    Arg.(
      value & flag
      & info [ "verify" ]
          ~doc:
            "Debug mode: re-validate the cover, reformulation and plan of \
             every answer with the static checkers (findings show up in \
             `refq profile` under the analysis.* counters).")
  in
  let domains =
    Arg.(
      value & opt int 1
      & info [ "domains" ] ~docv:"N"
          ~doc:
            "Evaluate with $(docv) domains (OCaml 5 multicore): saturation \
             rounds and JUCQ fragments are chunked across a fixed domain \
             pool and merged deterministically, so answers are bit-identical \
             to --domains 1. Budgeted runs (--deadline/--max-rows) stay \
             sequential.")
  in
  Cmd.v
    (Cmd.info "answer" ~doc:"Answer a query through a chosen strategy")
    Term.(
      ret
        (const run $ path $ query $ query_file $ strategy $ cover $ profile
       $ all_strategies $ minimize $ backend $ engine $ format $ explain
       $ no_cache $ use_views $ verify $ domains $ faults_arg $ fault_seed_arg
       $ retries_arg $ deadline_arg $ max_rows_arg $ persist_arg))

(* ------------------------------------------------------------------ *)
(* explain                                                             *)
(* ------------------------------------------------------------------ *)

let explain_cmd =
  let run path query query_file show_sparql =
    match load_store path with
    | Error m -> `Error (false, m)
    | Ok store -> (
      match read_query ~query ~query_file with
      | Error m -> `Error (false, m)
      | Ok text -> (
        match parse_query text with
        | Error e -> query_error e
        | Ok q ->
          let env = Answer.make_env store in
          let cl = Answer.closure env in
          let n = Refq_reform.Reformulate.count_disjuncts cl q in
          Fmt.pr "query: %a@." Cq.pp q;
          Fmt.pr "UCQ reformulation size: %d disjuncts@." n;
          (if show_sparql && n <= 50 then
             match Refq_reform.Reformulate.cq_to_ucq cl q with
             | u -> Fmt.pr "@.%s@." (Sparql.ucq_to_sparql ~env:workload_env u)
             | exception Refq_reform.Reformulate.Too_large _ -> ());
          let trace = Gcov.search (Answer.card_env env) cl q in
          Fmt.pr "@.GCov search (%d covers explored, %d rounds):@."
            (List.length trace.Gcov.explored)
            trace.Gcov.iterations;
          List.iter
            (fun s ->
              Fmt.pr "  %s %-50s cost %12.0f  est. card %10.0f@."
                (if s.Gcov.accepted then "*" else " ")
                (Fmt.str "%a" Cover.pp s.Gcov.cover)
                s.Gcov.estimate.Refq_cost.Cost_model.cost
                s.Gcov.estimate.Refq_cost.Cost_model.card)
            trace.Gcov.explored;
          Fmt.pr "@.chosen cover: %a (estimated cost %.0f)@." Cover.pp
            trace.Gcov.chosen
            trace.Gcov.chosen_estimate.Refq_cost.Cost_model.cost;
          (* The physical picture of the chosen strategy. *)
          (match
             Refq_reform.Reformulate.cover_to_jucq cl q trace.Gcov.chosen
           with
          | jucq ->
            let plan =
              Refq_cost.Plan.explain_jucq (Answer.card_env env) jucq
            in
            Fmt.pr "@.fragment plan (join order):@.%a@."
              Refq_cost.Plan.pp_jucq_plan plan
          | exception Refq_reform.Reformulate.Too_large _ -> ());
          Fmt.pr "@.single-CQ plan of the original query (as Sat would run it):@.%a@."
            Refq_cost.Plan.pp_cq_plan
            (Refq_cost.Plan.explain_cq (Answer.card_env env) q);
          `Ok ()))
  in
  let path =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"FILE" ~doc:"RDF file (.nt or .ttl).")
  in
  let query =
    Arg.(
      value
      & opt (some string) None
      & info [ "q"; "query" ] ~doc:"Query text.")
  in
  let query_file =
    Arg.(
      value
      & opt (some file) None
      & info [ "query-file" ] ~doc:"File holding the query.")
  in
  let show_sparql =
    Arg.(
      value & flag
      & info [ "sparql" ] ~doc:"Print the UCQ reformulation as SPARQL (small unions only).")
  in
  Cmd.v
    (Cmd.info "explain"
       ~doc:"Inspect reformulation sizes and GCov's explored cover space")
    Term.(ret (const run $ path $ query $ query_file $ show_sparql))

(* ------------------------------------------------------------------ *)
(* profile                                                             *)
(* ------------------------------------------------------------------ *)

let profile_cmd =
  let run path query query_file strategy_name cover_spec domains =
    if domains < 1 then die "--domains must be at least 1"
    else begin
    Par.set_domains domains;
    match load_store path with
    | Error m -> `Error (false, m)
    | Ok store -> (
      match read_query ~query ~query_file with
      | Error m -> `Error (false, m)
      | Ok text -> (
        match parse_query text with
        | Error e -> query_error e
        | Ok q -> (
          let env = Answer.make_env store in
          let n_atoms = List.length q.Cq.body in
          match strategy_conv ~n_atoms strategy_name cover_spec with
          | Error m -> `Error (false, m)
          | Ok s ->
            let result, rep =
              Obs.profile ~name:(Strategy.name s) (fun () ->
                  Answer.answer env q s)
            in
            (match result with
            | Ok r ->
              Fmt.pr "%a@." Answer.pp_report r;
              explain_answer env q r
            | Error f ->
              Fmt.pr "%s: FAILED after %.3fs: %s@."
                (Strategy.name f.Answer.f_strategy)
                f.Answer.f_reformulation_s f.Answer.reason);
            Fmt.pr "@.%a@." Obs.pp_report rep;
            `Ok ())))
    end
  in
  let path =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"FILE" ~doc:"RDF file (.nt or .ttl).")
  in
  let query =
    Arg.(
      value
      & opt (some string) None
      & info [ "q"; "query" ] ~doc:"Query text.")
  in
  let query_file =
    Arg.(
      value
      & opt (some file) None
      & info [ "query-file" ] ~doc:"File holding the query.")
  in
  let strategy =
    Arg.(
      value & opt string "gcov"
      & info [ "s"; "strategy" ]
          ~doc:"Strategy: sat, ucq, scq, jucq (with --cover), gcov, datalog.")
  in
  let cover =
    Arg.(
      value
      & opt (some string) None
      & info [ "cover" ]
          ~doc:"Cover for --strategy jucq, e.g. \"1,3;3,5;2,4;4,6\" (1-based).")
  in
  let domains =
    Arg.(
      value & opt int 1
      & info [ "domains" ] ~docv:"N"
          ~doc:
            "Profile with $(docv) domains: per-domain rollup spans \
             (domain-1, domain-2, ...) appear merged under their parent \
             stage in the span tree. Answers stay bit-identical to \
             --domains 1.")
  in
  Cmd.v
    (Cmd.info "profile"
       ~doc:
         "Answer a query with the observability sink on and print the span \
          tree (per-stage wall time, allocation, engine counters)")
    Term.(
      ret (const run $ path $ query $ query_file $ strategy $ cover $ domains))

(* ------------------------------------------------------------------ *)
(* lint / audit-store                                                  *)
(* ------------------------------------------------------------------ *)

module Diagnostic = Refq_analysis.Diagnostic
module Json = Refq_obs.Json

(* A compact one-line query rendering with the CLI's namespace prefixes
   (Cq.pp prints full URIs and breaks lines). *)
let pp_pat_env ppf = function
  | Cq.Var v -> Fmt.string ppf v
  | Cq.Cst t -> Namespace.pp_term workload_env ppf t

let pp_cq_env ppf (q : Cq.t) =
  let pp_atom ppf (a : Cq.atom) =
    Fmt.pf ppf "%a %a %a" pp_pat_env a.Cq.s pp_pat_env a.Cq.p pp_pat_env
      a.Cq.o
  in
  Fmt.pf ppf "q(%a) :- %a"
    (Fmt.list ~sep:(Fmt.any ", ") pp_pat_env)
    q.Cq.head
    (Fmt.list ~sep:(Fmt.any ", ") pp_atom)
    q.Cq.body

let lint_cmd =
  let run path query query_file bundled gen gen_seed max_disjuncts json
      catalogue =
    if catalogue then begin
      List.iter
        (fun (code, severity, doc) ->
          Fmt.pr "%-7s %-8s %s@." code (Diagnostic.severity_name severity) doc)
        Diagnostic.catalogue;
      `Ok ()
    end
    else
      match path with
      | None -> die "a data file is required (or use --catalogue)"
      | Some path -> (
        match load_store path with
        | Error m -> `Error (false, m)
        | Ok store -> (
          let named_query =
            match query, query_file with
            | None, None -> Ok []
            | _ -> (
              match read_query ~query ~query_file with
              | Error m -> Error (`Msg m)
              | Ok text -> (
                match parse_query text with
                | Error e -> Error (`Parse e)
                | Ok q -> Ok [ ("query", q) ]))
          in
          match named_query with
          | Error (`Msg m) -> `Error (false, m)
          | Error (`Parse e) -> query_error e
          | Ok named_query -> (
            let bundled_queries =
              match bundled with
              | None -> Ok []
              | Some "lubm" -> Ok Refq_workload.Lubm.queries
              | Some "dblp" -> Ok Refq_workload.Dblp.queries
              | Some "geo" -> Ok Refq_workload.Geo.queries
              | Some other ->
                Error (Printf.sprintf "unknown workload %S" other)
            in
            match bundled_queries with
            | Error m -> `Error (false, m)
            | Ok bundled_queries ->
              let generated =
                if gen <= 0 then []
                else
                  Refq_workload.Query_gen.generate
                    ~seed:(Int64.of_int gen_seed) store ~count:gen
              in
              let queries = named_query @ bundled_queries @ generated in
              if queries = [] then
                die "nothing to lint: give --query, --bundled or --gen"
              else begin
                let env = Answer.make_env store in
                let config =
                  match max_disjuncts with
                  | None -> Answer.Config.default
                  | Some m -> Answer.Config.(with_max_disjuncts m default)
                in
                let results =
                  List.map
                    (fun (name, q) -> (name, q, Lint.query ~config env q))
                    queries
                in
                (* A materialized-view sidecar next to the data file is
                   audited alongside the queries. *)
                let side = path ^ ".views" in
                let view_diags =
                  if not (Sys.file_exists side) then []
                  else
                    let ctx = Answer.views_ctx env in
                    match Refq_views.Views.load ctx side with
                    | Ok { Refq_views.Views.catalog; skipped } ->
                      (if skipped = 0 then []
                       else
                         [
                           Diagnostic.make ~code:"RV002"
                             ~severity:Diagnostic.Warning ~artifact:"views"
                             ~subject:side
                             "%d sidecar view(s) did not decode and were \
                              dropped"
                             skipped;
                         ])
                      @ Refq_analysis.Check_views.check ctx catalog
                    | Error m ->
                      [
                        Diagnostic.make ~code:"RV001"
                          ~severity:Diagnostic.Error ~artifact:"views"
                          ~subject:side
                          "unreadable sidecar (extents unverifiable): %s" m;
                      ]
                in
                let all =
                  List.concat_map (fun (_, _, ds) -> ds) results @ view_diags
                in
                let errors = Diagnostic.count Diagnostic.Error all in
                if json then
                  print_endline
                    (Json.to_string
                       (Json.Obj
                          [
                            ("file", Json.String path);
                            ( "queries",
                              Json.List
                                (List.map
                                   (fun (name, q, ds) ->
                                     match Diagnostic.list_to_json ds with
                                     | Json.Obj fields ->
                                       Json.Obj
                                         (("name", Json.String name)
                                         :: ( "query",
                                              Json.String
                                                (Fmt.str "%a" pp_cq_env q) )
                                         :: fields)
                                     | other -> other)
                                   results) );
                            ("views", Diagnostic.list_to_json view_diags);
                            ("errors", Json.Int errors);
                            ( "warnings",
                              Json.Int (Diagnostic.count Diagnostic.Warning all)
                            );
                            ("hints", Json.Int (Diagnostic.count Diagnostic.Hint all));
                          ]))
                else begin
                  List.iter
                    (fun (name, q, ds) ->
                      match ds with
                      | [] -> Fmt.pr "%-8s ok       %a@." name pp_cq_env q
                      | ds ->
                        Fmt.pr "%-8s %d finding(s) in %a@." name
                          (List.length ds) pp_cq_env q;
                        List.iter (fun d -> Fmt.pr "  %a@." Diagnostic.pp d) ds)
                    results;
                  match view_diags with
                  | [] -> ()
                  | ds ->
                    Fmt.pr "%-8s %d finding(s) in sidecar %s@." "views"
                      (List.length ds) side;
                    List.iter (fun d -> Fmt.pr "  %a@." Diagnostic.pp d) ds
                end;
                if errors > 0 then
                  die "lint: %d error(s) across %d quer%s" errors
                    (List.length queries)
                    (if List.length queries = 1 then "y" else "ies")
                else `Ok ()
              end)))
  in
  let path =
    Arg.(
      value
      & pos 0 (some file) None
      & info [] ~docv:"FILE" ~doc:"RDF file (.nt, .ttl or .store).")
  in
  let query =
    Arg.(
      value
      & opt (some string) None
      & info [ "q"; "query" ]
          ~doc:"Query (SPARQL SELECT or the paper's q(x) :- ... notation).")
  in
  let query_file =
    Arg.(
      value
      & opt (some file) None
      & info [ "query-file" ] ~doc:"File holding the query.")
  in
  let bundled =
    Arg.(
      value
      & opt (some string) None
      & info [ "bundled" ] ~docv:"WORKLOAD"
          ~doc:"Also lint the bundled queries of a workload: lubm, dblp or                 geo.")
  in
  let gen =
    Arg.(
      value & opt int 0
      & info [ "gen" ] ~docv:"N"
          ~doc:"Also lint N deterministic Query_gen queries over the                 dataset's vocabulary.")
  in
  let gen_seed =
    Arg.(
      value & opt int 42
      & info [ "gen-seed" ] ~doc:"Seed of the generated query batch.")
  in
  let max_disjuncts =
    Arg.(
      value
      & opt (some int) None
      & info [ "max-disjuncts" ]
          ~doc:"Disjunct budget the reformulation checks enforce (default                 200,000).")
  in
  let json =
    Arg.(
      value & flag
      & info [ "json" ] ~doc:"Emit the diagnostics as machine-readable JSON.")
  in
  let catalogue =
    Arg.(
      value & flag
      & info [ "catalogue" ]
          ~doc:"Print the diagnostic catalogue (every code, severity and                 description) and exit.")
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:
         "Statically check queries, their reformulations, covers and plans; \
          exits non-zero when any error-severity diagnostic fires")
    Term.(
      ret
        (const run $ path $ query $ query_file $ bundled $ gen $ gen_seed
       $ max_disjuncts $ json $ catalogue))

let audit_store_cmd =
  let finish ds json ok_line =
    if json then print_endline (Json.to_string (Diagnostic.list_to_json ds))
    else if ds = [] then ok_line ()
    else Fmt.pr "%a@." Diagnostic.pp_list ds;
    if Diagnostic.has_errors ds then
      die "audit: %d integrity error(s)" (List.length (Diagnostic.errors ds))
    else `Ok ()
  in
  let run path json persist_dir =
    match persist_dir, path with
    | Some dir, _ ->
      (* Read-only: recovery is simulated in memory, the directory is not
         repaired — auditing must never mutate the evidence. *)
      let ds = Refq_analysis.Audit_store.check_persist dir in
      finish ds json (fun () ->
          match Persist.recover dir with
          | Ok { Persist.store; report; _ } ->
            Fmt.pr "persist OK: %s — %d triple(s), epochs data=%d schema=%d%s@."
              dir (Store.size store) (fst report.Persist.recovered)
              (snd report.Persist.recovered)
              (if report.Persist.sat_restored then ", saturation restorable"
               else "")
          | Error m -> Fmt.pr "persist: %s@." m)
    | None, Some path -> (
      match load_store path with
      | Error m -> `Error (false, m)
      | Ok store ->
        let ds = Refq_analysis.Audit_store.check store in
        finish ds json (fun () ->
            Fmt.pr "store OK: %d triple(s), %d dictionary id(s), epochs \
                    data=%d schema=%d@."
              (Store.size store)
              (Dictionary.size (Store.dictionary store))
              (Store.data_epoch store) (Store.schema_epoch store)))
    | None, None -> die "give an RDF FILE or --persist DIR"
  in
  let path =
    Arg.(
      value
      & pos 0 (some file) None
      & info [] ~docv:"FILE" ~doc:"RDF file (.nt, .ttl or .store).")
  in
  let json =
    Arg.(
      value & flag
      & info [ "json" ] ~doc:"Emit the diagnostics as machine-readable JSON.")
  in
  let persist =
    Arg.(
      value
      & opt (some string) None
      & info [ "persist" ] ~docv:"DIR"
          ~doc:
            "Audit a persistence directory instead: simulate recovery \
             (read-only) and check snapshot/WAL integrity (RS004), epoch \
             contiguity against the durable watermark (RS005) and the \
             recovered store's index agreement (RS006).")
  in
  Cmd.v
    (Cmd.info "audit-store"
       ~doc:
         "Audit a store's integrity invariants: dictionary bijectivity, \
          index agreement, epoch sanity, crash-recovery soundness")
    Term.(ret (const run $ path $ json $ persist))

let audit_concurrency_cmd =
  let run path json =
    match Conc_trace.load path with
    | Error m -> `Error (false, m)
    | Ok entries ->
      let ds = Check_conc.check entries in
      if json then print_endline (Json.to_string (Diagnostic.list_to_json ds))
      else if ds = [] then
        Fmt.pr "concurrency OK: %d event(s), happens-before rebuilt, no RX \
                finding@."
          (List.length entries)
      else Fmt.pr "%a@." Diagnostic.pp_list ds;
      if Diagnostic.has_errors ds then
        die "audit: %d concurrency error(s)" (List.length (Diagnostic.errors ds))
      else `Ok ()
  in
  let path =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"TRACE"
          ~doc:
            "Concurrency trace (ndjson) written by `refq serve --trace', \
             the REFQ_CONC_TRACE test hook, or Conc_trace.save.")
  in
  let json =
    Arg.(
      value & flag
      & info [ "json" ] ~doc:"Emit the diagnostics as machine-readable JSON.")
  in
  Cmd.v
    (Cmd.info "audit-concurrency"
       ~doc:
         "Replay a recorded concurrency trace through the happens-before \
          checker: rebuild vector clocks from pool handoffs, writer \
          sections and snapshot swaps, then report RX001-RX006 (races, \
          pinned-epoch mutations, epoch regressions, out-of-section WAL \
          appends, post-drain admissions, unhanded stores in jobs).")
    Term.(ret (const run $ path $ json))

(* ------------------------------------------------------------------ *)
(* saturate                                                            *)
(* ------------------------------------------------------------------ *)

let saturate_cmd =
  let run path output =
    match load_store path with
    | Error m -> `Error (false, m)
    | Ok store ->
      let sat, info = Refq_saturation.Saturate.store_info store in
      Fmt.pr "saturated %d → %d triples in %d round(s), %.3fs@."
        info.Refq_saturation.Saturate.input_triples
        info.Refq_saturation.Saturate.output_triples
        info.Refq_saturation.Saturate.rounds
        info.Refq_saturation.Saturate.elapsed_s;
      (match output with
      | Some out -> Ntriples.write_file out (Store.to_graph sat)
      | None -> ());
      `Ok ()
  in
  let path =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"FILE" ~doc:"RDF file (.nt or .ttl).")
  in
  let output =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Write G∞ as N-Triples.")
  in
  Cmd.v
    (Cmd.info "saturate" ~doc:"Materialize the saturation (Sat technique)")
    Term.(ret (const run $ path $ output))

(* ------------------------------------------------------------------ *)
(* cache                                                               *)
(* ------------------------------------------------------------------ *)

let cache_cmd =
  let stats_cmd =
    let run path query query_file strategy_name runs =
      match load_store path with
      | Error m -> `Error (false, m)
      | Ok store -> (
        match read_query ~query ~query_file with
        | Error m -> `Error (false, m)
        | Ok text -> (
          match parse_query text with
          | Error e -> query_error e
          | Ok q -> (
            match Strategy.of_string strategy_name with
            | Error m -> `Error (false, m)
            | Ok s -> (
              match Session.of_store store with
              | Error m -> `Error (false, m)
              | Ok session ->
                for i = 1 to runs do
                  match Session.answer session q s with
                  | Ok r ->
                    Fmt.pr "run %d (%s): %d answer(s) in %.4fs@." i
                      (if i = 1 then "cold" else "warm")
                      (Answer.n_answers r) (Answer.total_s r)
                  | Error f -> Fmt.pr "run %d: FAILED: %s@." i f.Answer.reason
                done;
                (* The pinned pair the runs were served at. *)
                let data, schema = Session.epochs session in
                Fmt.pr "@.epochs: data=%d schema=%d@." data schema;
                List.iter
                  (fun st -> Fmt.pr "%a@." Answer.Cache.pp_stats st)
                  (Session.cache_stats session);
                `Ok ()))))
    in
    let path =
      Arg.(
        required
        & pos 0 (some file) None
        & info [] ~docv:"FILE" ~doc:"RDF file (.nt or .ttl).")
    in
    let query =
      Arg.(
        value
        & opt (some string) None
        & info [ "q"; "query" ]
            ~doc:"Query (SPARQL SELECT or the paper's q(x) :- ... notation).")
    in
    let query_file =
      Arg.(
        value
        & opt (some file) None
        & info [ "query-file" ] ~doc:"File holding the query.")
    in
    let strategy =
      Arg.(
        value & opt string "gcov"
        & info [ "s"; "strategy" ] ~doc:"Strategy: sat, ucq, scq, gcov, datalog.")
    in
    let runs =
      Arg.(
        value & opt int 3
        & info [ "runs" ]
            ~doc:"How many times to answer the query against one environment               (first run is cold, the rest hit the caches).")
    in
    Cmd.v
      (Cmd.info "stats"
         ~doc:
           "Answer a query several times against one environment and print           the per-level cache statistics (hits, misses, evictions)")
      Term.(
        ret (const run $ path $ query $ query_file $ strategy $ runs))
  in
  Cmd.group
    (Cmd.info "cache"
       ~doc:"Inspect the multi-level answering cache (see `refq cache stats`)")
    [ stats_cmd ]

(* ------------------------------------------------------------------ *)
(* views                                                               *)
(* ------------------------------------------------------------------ *)

module Views = Refq_views.Views
module Harvest = Refq_views.Harvest
module Select = Refq_views.Select

let views_workload store ~bundled ~gen ~gen_seed =
  let bundled_queries =
    match bundled with
    | None -> Ok []
    | Some "lubm" -> Ok Refq_workload.Lubm.queries
    | Some "dblp" -> Ok Refq_workload.Dblp.queries
    | Some "geo" -> Ok Refq_workload.Geo.queries
    | Some other -> Error (Printf.sprintf "unknown workload %S" other)
  in
  match bundled_queries with
  | Error _ as e -> e
  | Ok bq ->
    let generated =
      if gen <= 0 then []
      else
        Refq_workload.Query_gen.generate ~seed:(Int64.of_int gen_seed) store
          ~count:gen
    in
    Ok (bq @ generated)

let views_cmd =
  let path_arg =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"FILE" ~doc:"RDF data file (.nt or .ttl).")
  in
  let views_file_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "views-file" ] ~docv:"FILE"
          ~doc:"Sidecar catalog path (default: the data file plus `.views').")
  in
  let sidecar path views_file = Option.value views_file ~default:(path ^ ".views") in
  let bundled_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "bundled" ] ~docv:"WORKLOAD"
          ~doc:"Harvest candidates from the bundled queries of lubm, dblp or                 geo.")
  in
  let gen_arg =
    Arg.(
      value & opt int 0
      & info [ "gen" ] ~docv:"N"
          ~doc:"Also harvest from N deterministic Query_gen queries.")
  in
  let gen_seed_arg =
    Arg.(
      value & opt int 42
      & info [ "gen-seed" ] ~doc:"Seed of the generated query batch.")
  in
  let budget_arg =
    Arg.(
      value
      & opt float 10_000.0
      & info [ "space-budget" ] ~docv:"ROWS"
          ~doc:
            "Space budget, in estimated extent rows, for the greedy \
             knapsack selection.")
  in
  let max_atoms_arg =
    Arg.(
      value & opt int 3
      & info [ "max-atoms" ]
          ~doc:"Largest connected fragment proposed as a candidate view.")
  in
  (* Shared front half of recommend / materialize: harvest the workload's
     candidates and run the budgeted selection. *)
  let recommend path bundled gen gen_seed budget max_atoms =
    match load_store path with
    | Error m -> Error m
    | Ok store -> (
      match views_workload store ~bundled ~gen ~gen_seed with
      | Error m -> Error m
      | Ok [] -> Error "an empty workload: give --bundled and/or --gen"
      | Ok queries ->
        let env = Answer.make_env store in
        let params =
          { Harvest.default_params with Harvest.max_fragment_atoms = max_atoms }
        in
        let cands =
          Harvest.candidates ~params (Answer.card_env env) (Answer.closure env)
            queries
        in
        Ok (env, Select.select ~budget cands))
  in
  let recommend_cmd =
    let run path bundled gen gen_seed budget max_atoms =
      match recommend path bundled gen gen_seed budget max_atoms with
      | Error m -> `Error (false, m)
      | Ok (_, trace) ->
        Fmt.pr "%a@." Select.pp_trace trace;
        `Ok ()
    in
    Cmd.v
      (Cmd.info "recommend"
         ~doc:
           "Harvest candidate views from a workload and print the budgeted \
            selection trace (no extent is materialized)")
      Term.(
        ret
          (const run $ path_arg $ bundled_arg $ gen_arg $ gen_seed_arg
         $ budget_arg $ max_atoms_arg))
  in
  let materialize_cmd =
    let run path views_file bundled gen gen_seed budget max_atoms =
      match recommend path bundled gen gen_seed budget max_atoms with
      | Error m -> `Error (false, m)
      | Ok (env, trace) ->
        let ctx = Answer.views_ctx env in
        let catalog = Answer.views env in
        List.iter
          (fun (c : Harvest.candidate) ->
            match Views.materialize ctx catalog c.Harvest.def with
            | Ok _ -> ()
            | Error m -> Fmt.epr "views: skipping %s: %s@." c.Harvest.key m)
          trace.Select.chosen;
        let out = sidecar path views_file in
        Views.save ctx catalog out;
        Fmt.pr "%a@.@.materialized %d view(s) to %s@." Select.pp_trace trace
          (Views.length catalog) out;
        `Ok ()
    in
    Cmd.v
      (Cmd.info "materialize"
         ~doc:
           "Run the budgeted selection and materialize the chosen views \
            into a sidecar catalog (FILE.views)")
      Term.(
        ret
          (const run $ path_arg $ views_file_arg $ bundled_arg $ gen_arg
         $ gen_seed_arg $ budget_arg $ max_atoms_arg))
  in
  (* Shared back half of list / drop / refresh / audit: load the sidecar. *)
  let with_catalog path views_file k =
    match load_store path with
    | Error m -> `Error (false, m)
    | Ok store -> (
      let env = Answer.make_env store in
      let ctx = Answer.views_ctx env in
      let side = sidecar path views_file in
      if not (Sys.file_exists side) then
        die "no sidecar at %s (run `refq views materialize' first)" side
      else
        match Views.load ctx side with
        | Error m -> `Error (false, m)
        | Ok { Views.catalog; skipped } ->
          if skipped > 0 then
            Fmt.epr "views: %s: skipped %d undecodable view(s)@." side skipped;
          k store ctx side catalog)
  in
  let list_cmd =
    let run path views_file =
      with_catalog path views_file (fun store _ctx _side catalog ->
          Fmt.pr "epochs: data=%d schema=%d@." (Store.data_epoch store)
            (Store.schema_epoch store);
          List.iter
            (fun v ->
              Fmt.pr "%-5s %a@."
                (if Views.is_fresh store v then "fresh" else "stale")
                Views.pp_info (Views.info v))
            (Views.views catalog);
          Fmt.pr "%d view(s)@." (Views.length catalog);
          `Ok ())
    in
    Cmd.v
      (Cmd.info "list"
         ~doc:"List the sidecar's views with their freshness and epochs")
      Term.(ret (const run $ path_arg $ views_file_arg))
  in
  let drop_cmd =
    let run path views_file keys all =
      with_catalog path views_file (fun _store ctx side catalog ->
          if all then begin
            let n = Views.length catalog in
            Views.clear catalog;
            Views.save ctx catalog side;
            Fmt.pr "dropped %d view(s)@." n;
            `Ok ()
          end
          else if keys = [] then die "give --key (repeatable) or --all"
          else begin
            List.iter
              (fun k ->
                if Views.drop catalog k then Fmt.pr "dropped %s@." k
                else Fmt.epr "views: no view keyed %s@." k)
              keys;
            Views.save ctx catalog side;
            `Ok ()
          end)
    in
    let keys =
      Arg.(
        value & opt_all string []
        & info [ "key" ] ~docv:"KEY"
            ~doc:"Canonical key of a view to drop (as printed by `refq views                   list').")
    in
    let all =
      Arg.(value & flag & info [ "all" ] ~doc:"Drop every view.")
    in
    Cmd.v
      (Cmd.info "drop" ~doc:"Drop views from the sidecar catalog")
      Term.(ret (const run $ path_arg $ views_file_arg $ keys $ all))
  in
  let refresh_cmd =
    let run path views_file =
      with_catalog path views_file (fun _store ctx side catalog ->
          let outcome = Views.refresh ctx catalog in
          Views.save ctx catalog side;
          Fmt.pr "%a@." Views.pp_outcome outcome;
          `Ok ())
    in
    Cmd.v
      (Cmd.info "refresh"
         ~doc:
           "Bring every view up to the data file's current epochs \
            (schema-stale views are dropped, data-stale ones \
            re-materialized) and rewrite the sidecar")
      Term.(ret (const run $ path_arg $ views_file_arg))
  in
  let audit_cmd =
    let run path views_file json =
      with_catalog path views_file (fun store ctx _side catalog ->
          let ds = Refq_analysis.Check_views.check ctx catalog in
          if json then
            print_endline (Json.to_string (Diagnostic.list_to_json ds))
          else if ds = [] then
            Fmt.pr "views OK: %d view(s), epochs data=%d schema=%d@."
              (Views.length catalog) (Store.data_epoch store)
              (Store.schema_epoch store)
          else Fmt.pr "%a@." Diagnostic.pp_list ds;
          if Diagnostic.has_errors ds then
            die "views audit: %d error(s)"
              (List.length (Diagnostic.errors ds))
          else `Ok ())
    in
    let json =
      Arg.(
        value & flag
        & info [ "json" ] ~doc:"Emit the diagnostics as machine-readable JSON.")
    in
    Cmd.v
      (Cmd.info "audit"
         ~doc:
           "Audit the sidecar against the data file: extent/definition \
            agreement (RV001), staleness (RV002), redundant views (RV003)")
      Term.(ret (const run $ path_arg $ views_file_arg $ json))
  in
  Cmd.group
    (Cmd.info "views"
       ~doc:
         "Workload-driven materialized views: recommend, materialize, \
          list, drop, refresh, audit")
    [
      recommend_cmd; materialize_cmd; list_cmd; drop_cmd; refresh_cmd;
      audit_cmd;
    ]

(* ------------------------------------------------------------------ *)
(* demo                                                                *)
(* ------------------------------------------------------------------ *)

let demo_cmd =
  Cmd.v
    (Cmd.info "demo"
       ~doc:
         "Interactive walkthrough of the demonstration scenario (load /           stats / query / run / explain / modify)")
    Term.(const Demo.main $ const ())

(* ------------------------------------------------------------------ *)
(* federate                                                            *)
(* ------------------------------------------------------------------ *)

let federate_cmd =
  let run paths query query_file limit faults fault_seed retries deadline
      max_rows =
    match read_query ~query ~query_file with
    | Error m -> `Error (false, m)
    | Ok text -> (
      match parse_query text with
      | Error e -> query_error e
      | Ok q -> (
        let graphs =
          List.map
            (fun path -> Result.map (fun g -> (path, g)) (load_graph path))
            paths
        in
        match
          List.find_map (function Error m -> Some m | Ok _ -> None) graphs
        with
        | Some m -> `Error (false, m)
        | None -> (
          match make_resilience ~faults ~fault_seed ~retries with
          | Error m -> `Error (false, m)
          | Ok resilience ->
            let budget = make_budget ~deadline ~max_rows in
            let specs =
              List.filter_map
                (function
                  | Ok (path, g) -> Some (Filename.basename path, g, limit)
                  | Error _ -> None)
                graphs
            in
            let open Refq_federation in
            let fed = Federation.of_graphs specs in
            let show label answers =
              let rows = Federation.decode fed answers in
              Fmt.pr "%-18s %6d answer(s)@." label (List.length rows)
            in
            let refd, report =
              let answer =
                match budget with
                | Some b -> Refq_core.Config.(with_budget b default)
                | None -> Refq_core.Config.default
              in
              Federation.answer_ref
                ~config:
                  { Federation.Config.default with answer; resilience }
                fed q
            in
            show "centralized" (Federation.answer_centralized fed q);
            show "per-endpoint sat" (Federation.answer_local_sat fed q);
            show "federated ref" refd;
            if
              faults <> None || budget <> None
              || report.Answer.verdict <> Answer.Sound_and_complete
            then Fmt.pr "%a@." Answer.pp_federation_report report;
            List.iter
              (fun row ->
                Fmt.pr "  %a@."
                  (Fmt.list ~sep:(Fmt.any " | ")
                     (Namespace.pp_term workload_env))
                  row)
              (Federation.decode fed refd);
            `Ok ())))
  in
  let paths =
    Arg.(
      non_empty
      & pos_all file []
      & info [] ~docv:"FILE..." ~doc:"One RDF file per endpoint.")
  in
  let query =
    Arg.(
      value
      & opt (some string) None
      & info [ "q"; "query" ] ~doc:"Query text.")
  in
  let query_file =
    Arg.(
      value
      & opt (some file) None
      & info [ "query-file" ] ~doc:"File holding the query.")
  in
  let limit =
    Arg.(
      value
      & opt (some int) None
      & info [ "limit" ]
          ~doc:"Per-endpoint answer limit (sources returning only the first                 N answers).")
  in
  Cmd.v
    (Cmd.info "federate"
       ~doc:
         "Answer a query over several endpoint files: centralized vs           per-endpoint saturation vs federated reformulation")
    Term.(
      ret
        (const run $ paths $ query $ query_file $ limit $ faults_arg
       $ fault_seed_arg $ retries_arg $ deadline_arg $ max_rows_arg))

(* ------------------------------------------------------------------ *)
(* snapshot                                                            *)
(* ------------------------------------------------------------------ *)

let snapshot_cmd =
  let data_arg =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"FILE" ~doc:"RDF file (.nt, .ttl or .store).")
  in
  let dir_arg n =
    Arg.(
      required
      & pos n (some string) None
      & info [] ~docv:"DIR" ~doc:"Persistence directory.")
  in
  let with_synced ~io path dir k =
    match load_store path with
    | Error m -> `Error (false, m)
    | Ok data -> (
      match Persist.open_dir ~io dir with
      | Error m -> `Error (false, m)
      | Ok h ->
        report_recovery dir (Persist.report h);
        let added, removed = sync_persisted h (Store.to_graph data) in
        let st = Persist.store h in
        Fmt.pr "synced %s: +%d/-%d triple(s), now %d at epochs data=%d \
                schema=%d@."
          dir added removed (Store.size st) (Store.data_epoch st)
          (Store.schema_epoch st);
        k h)
  in
  let save_cmd =
    let run path dir with_sat =
      with_synced ~io:Io.real path dir (fun h ->
          let sat =
            if with_sat then
              Some (Refq_saturation.Saturate.store (Persist.store h))
            else None
          in
          Persist.snapshot ?sat h;
          Fmt.pr "snapshot written: %s%s@." dir
            (match sat with
            | Some sst ->
              Fmt.str " (saturation closure: %d triple(s))" (Store.size sst)
            | None -> "");
          Persist.close h;
          `Ok ())
    in
    let with_sat =
      Arg.(
        value & flag
        & info [ "sat" ]
            ~doc:
              "Saturate first and store the closure in the snapshot, so \
               reopening skips both parsing and saturation.")
    in
    Cmd.v
      (Cmd.info "save"
         ~doc:
           "Sync DIR to FILE's triples and write a new snapshot generation \
            (collapsing the write-ahead log)")
      Term.(ret (const run $ data_arg $ dir_arg 1 $ with_sat))
  in
  let sync_cmd =
    let run path dir io_fault io_seed =
      match make_io ~io_fault ~io_seed with
      | Error m -> `Error (false, m)
      | Ok io -> (
        (* Io.Crash is the simulated power cut the fault spec asked for:
           report where it hit and exit cleanly, leaving the torn state
           on disk for recovery (and the smoke tests) to chew on. *)
        try
          with_synced ~io path dir (fun h ->
              Persist.close h;
              `Ok ())
        with Io.Crash m ->
          Fmt.pr "crash injected: %s (after %d byte(s), %d op(s))@." m
            (Io.bytes_written io) (Io.ops io);
          `Ok ())
    in
    Cmd.v
      (Cmd.info "sync"
         ~doc:
           "Sync DIR to FILE's triples through the write-ahead log only (no \
            snapshot rotation); with --io-fault, tear the log mid-write")
      Term.(ret (const run $ data_arg $ dir_arg 1 $ io_fault_arg $ io_seed_arg))
  in
  let load_cmd =
    let run dir =
      match Persist.open_dir dir with
      | Error m -> `Error (false, m)
      | Ok h ->
        let st = Persist.store h in
        Fmt.pr "%a@." Persist.pp_report (Persist.report h);
        Fmt.pr "store: %d triple(s), %d dictionary id(s)@." (Store.size st)
          (Dictionary.size (Store.dictionary st));
        (match Persist.sat h with
        | Some sst ->
          Fmt.pr "saturation: %d triple(s) restored@." (Store.size sst)
        | None -> ());
        Persist.close h;
        `Ok ()
    in
    Cmd.v
      (Cmd.info "load"
         ~doc:
           "Open-or-recover DIR (repairing torn WAL tails) and print the \
            recovery report and store statistics")
      Term.(ret (const run $ dir_arg 0))
  in
  let info_cmd =
    let run dir =
      match Persist.recover dir with
      | Error m -> `Error (false, m)
      | Ok { Persist.store = st; sat; report } ->
        List.iter
          (fun f ->
            let p = Persist.path dir f in
            if Sys.file_exists p then
              Fmt.pr "%-14s %d byte(s)@." (Filename.basename p)
                (Unix.stat p).Unix.st_size)
          [ `Snapshot_cur; `Snapshot_prev; `Wal_cur; `Wal_prev; `Meta ];
        Fmt.pr "%a@." Persist.pp_report report;
        Fmt.pr "store: %d triple(s)%s@." (Store.size st)
          (match sat with
          | Some sst -> Fmt.str "; saturation: %d triple(s)" (Store.size sst)
          | None -> "");
        `Ok ()
    in
    Cmd.v
      (Cmd.info "info"
         ~doc:
           "Inspect DIR without touching it: file sizes and a simulated \
            (read-only) recovery report")
      Term.(ret (const run $ dir_arg 0))
  in
  Cmd.group
    (Cmd.info "snapshot"
       ~doc:
         "Durable stores: write snapshot generations, append to the WAL, \
          inspect and crash-recover persistence directories")
    [ save_cmd; sync_cmd; load_cmd; info_cmd ]

(* ------------------------------------------------------------------ *)
(* serve / client                                                      *)
(* ------------------------------------------------------------------ *)

let serve_cmd =
  let run path port host domains engine_name deadline max_rows use_views
      persist_dir trace =
    if domains < 1 then die "--domains must be at least 1"
    else begin
      match
        match path with
        | None -> Ok None
        | Some p -> Result.map Option.some (load_store p)
      with
      | Error m -> `Error (false, m)
      | Ok seed -> (
        if seed = None && persist_dir = None then
          die "give an RDF FILE or --persist DIR (or both: FILE seeds a \
               fresh DIR)"
        else begin
          match
            match engine_name with
            | "binary" -> Ok Answer.Config.Binary
            | "wco" -> Ok Answer.Config.Wco
            | "auto" -> Ok Answer.Config.Auto
            | other -> Error (Printf.sprintf "unknown engine %S" other)
          with
          | Error m -> `Error (false, m)
          | Ok engine ->
          let config =
            match path, use_views with
            | Some p, true ->
              session_config ~path:p ~use_views:true ~domains ~persist_dir
            | _ -> session_config ~path:"" ~use_views:false ~domains ~persist_dir
          in
          (* The serving default for every request that does not pick its
             own config: the session threads it through [Session.answer]. *)
          let config =
            Session.Config.with_answer
              (Answer.Config.with_engine engine config.Session.Config.answer)
              config
          in
          match Session.open_ ~config ?store:seed () with
          | Error m -> `Error (false, m)
          | Ok session -> (
            (match path with
            | Some p -> report_session ~path:p ~persist_dir (Session.info session)
            | None -> (
              match persist_dir, (Session.info session).Session.recovery with
              | Some dir, Some r -> report_recovery dir r
              | _ -> ()));
            let sconfig =
              let c = Serve.Config.(default |> with_host host |> with_port port) in
              let c =
                match deadline with
                | Some d -> Serve.Config.with_deadline d c
                | None -> c
              in
              let c =
                match max_rows with
                | Some n -> Serve.Config.with_max_rows n c
                | None -> c
              in
              match trace with
              | Some f -> Serve.Config.with_trace f c
              | None -> c
            in
            match Serve.start ~config:sconfig session with
            | Error m -> `Error (false, m)
            | Ok server ->
              let data, schema = Session.epochs session in
              Fmt.pr
                "serving %d triple(s) on %s:%d (epochs data=%d schema=%d)@."
                (Store.size (Session.store session))
                host (Serve.port server) data schema;
              Serve.wait server;
              Fmt.pr "drained: WAL flushed, snapshot rotated@.";
              (match Serve.trace_report server, trace with
              | Some (events, ds), Some file ->
                Fmt.pr "concurrency audit: %d event(s) -> %s, %d finding(s)@."
                  events file (List.length ds);
                if ds <> [] then Fmt.pr "%a@." Diagnostic.pp_list ds
              | _ -> ());
              `Ok ())
        end)
    end
  in
  let path =
    Arg.(
      value
      & pos 0 (some file) None
      & info [] ~docv:"FILE"
          ~doc:
            "RDF file to serve (.nt, .ttl or .store). With --persist, seeds \
             a fresh directory; a non-empty directory wins over the file.")
  in
  let port =
    Arg.(
      value & opt int 0
      & info [ "port" ] ~docv:"PORT"
          ~doc:"TCP port; 0 (the default) picks an ephemeral one, printed \
                on startup.")
  in
  let host =
    Arg.(
      value & opt string "127.0.0.1"
      & info [ "host" ] ~docv:"ADDR" ~doc:"Bind address.")
  in
  let domains =
    Arg.(
      value & opt int 1
      & info [ "domains" ] ~docv:"N"
          ~doc:"Domain-pool size for the parallel evaluation paths.")
  in
  let engine =
    Arg.(
      value & opt string "binary"
      & info [ "engine" ]
          ~doc:
            "Default join operator for served answers: binary, wco or \
             auto (see `refq answer --engine').")
  in
  let deadline =
    Arg.(
      value
      & opt (some int) None
      & info [ "deadline" ] ~docv:"TICKS"
          ~doc:
            "Default per-request deadline in simulated ticks (a request \
             may set its own).")
  in
  let max_rows =
    Arg.(
      value
      & opt (some int) None
      & info [ "max-rows" ]
          ~doc:"Default per-request cap on intermediate-relation rows.")
  in
  let use_views =
    Arg.(
      value
      & vflag true
          [
            ( true,
              info [ "views" ]
                ~doc:"Consult FILE.views when answering (the default)." );
            (false, info [ "no-views" ] ~doc:"Never consult materialized views.");
          ])
  in
  let trace =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:
            "Record a concurrency trace for the server's lifetime; at \
             drain, write it to FILE (ndjson), run the happens-before \
             checker over it and print the RX findings. Replay later with \
             `refq audit-concurrency FILE'.")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Serve a database over TCP (newline-delimited JSON) with \
          epoch-snapshot isolation: readers pin the epoch pair current at \
          admission, a single writer applies batches and bumps snapshots, \
          and every response reports the pinned pair it was served at. \
          `shutdown' drains gracefully (WAL flush + snapshot rotation).")
    Term.(
      ret
        (const run $ path $ port $ host $ domains $ engine $ deadline
       $ max_rows $ use_views $ persist_arg $ trace))

let client_cmd =
  let run host port requests =
    match Unix.inet_addr_of_string host with
    | exception Failure _ -> die "invalid host %S" host
    | addr -> (
      let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      match Unix.connect sock (Unix.ADDR_INET (addr, port)) with
      | exception Unix.Unix_error (e, _, _) ->
        die "connect %s:%d: %s" host port (Unix.error_message e)
      | () ->
        let ic = Unix.in_channel_of_descr sock in
        let oc = Unix.out_channel_of_descr sock in
        let ok = ref true in
        let send line =
          output_string oc line;
          output_char oc '\n';
          flush oc;
          match input_line ic with
          | resp ->
            print_endline resp;
            (* Surface protocol-level failures in the exit code so smoke
               scripts can assert on them. *)
            if String.length resp >= 11 && String.sub resp 0 11 = {|{"ok":false|}
            then ok := false
          | exception End_of_file -> ()
        in
        (match requests with
        | [] ->
          let rec loop () =
            match In_channel.input_line stdin with
            | Some line ->
              if String.trim line <> "" then send line;
              loop ()
            | None -> ()
          in
          loop ()
        | rs -> List.iter send rs);
        (try Unix.close sock with Unix.Unix_error _ -> ());
        if !ok then `Ok () else `Error (false, "server reported an error"))
  in
  let host =
    Arg.(
      value & opt string "127.0.0.1"
      & info [ "host" ] ~docv:"ADDR" ~doc:"Server address.")
  in
  let port =
    Arg.(
      required
      & opt (some int) None
      & info [ "port" ] ~docv:"PORT" ~doc:"Server port.")
  in
  let requests =
    Arg.(
      value & pos_all string []
      & info [] ~docv:"REQUEST"
          ~doc:
            "JSON request lines to send in order (read from stdin when \
             omitted). Each response is printed on its own line.")
  in
  Cmd.v
    (Cmd.info "client"
       ~doc:
         "Send newline-delimited JSON requests to a running `refq serve' \
          and print the responses (exit status reflects \"ok\":false \
          responses)")
    Term.(ret (const run $ host $ port $ requests))

let () =
  (* Debug logging for the refq.* sources: REFQ_DEBUG=1 refq ... *)
  if Sys.getenv_opt "REFQ_DEBUG" <> None then begin
    Logs.set_reporter (Logs_fmt.reporter ());
    Logs.set_level (Some Logs.Debug)
  end;
  let doc = "reformulation-based query answering in RDF" in
  let info = Cmd.info "refq" ~version:Version.version ~doc in
  let group =
    Cmd.group info
      [
        generate_cmd; stats_cmd; answer_cmd; explain_cmd; profile_cmd;
        lint_cmd; audit_store_cmd; audit_concurrency_cmd; saturate_cmd;
        snapshot_cmd; cache_cmd;
        views_cmd; federate_cmd; demo_cmd; serve_cmd; client_cmd;
      ]
  in
  (* One-line diagnostics instead of raw backtraces for the failures a
     user can trigger from the command line. *)
  exit
    (try Cmd.eval ~catch:false group with
    | Refq_reform.Reformulate.Too_large n ->
      Fmt.epr
        "refq: reformulation too large (over %d disjuncts); try --strategy \
         scq or gcov, or set --max-rows/--deadline to accept a degraded \
         answer@."
        n;
      Cmd.Exit.some_error
    | Refq_fault.Budget.Exhausted reason ->
      Fmt.epr "refq: budget exhausted: %s@." reason;
      Cmd.Exit.some_error
    | Invalid_argument m | Failure m | Sys_error m ->
      Fmt.epr "refq: %s@." m;
      Cmd.Exit.some_error)
