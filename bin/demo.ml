(* Interactive demonstration loop — the command-line analogue of the
   paper's GUI scenario:

     1. pick an RDF graph and visualize its statistics,
     2. select a query and answer it through a chosen strategy (or all),
     3. observe runtimes, plans, covers and GCov's explored space,
     4. modify the data or the constraints and re-run.

   Reads commands from stdin; `help` lists them. Designed to be equally
   usable piped from a script (deterministic output, no escape codes). *)

open Refq_rdf
open Refq_query
open Refq_storage
open Refq_core
module Session = Refq_serve.Session

type state = {
  mutable session : Session.t option;
  mutable query : Cq.t option;
  mutable profile : Refq_reform.Profiles.t;
  mutable minimize : bool;
  mutable use_cache : bool;
  ns : Namespace.t;
}

let config st =
  let profile = st.profile and minimize = st.minimize in
  let use_cache = st.use_cache in
  Answer.Config.(
    default |> with_profile profile |> with_minimize minimize
    |> with_cache use_cache)

let help () =
  print_string
    {|commands:
  generate lubm|dblp|geo <scale>   build a synthetic dataset (step 1)
  load <file.nt|file.ttl>          load a dataset
  stats                            dataset statistics (step 1)
  query <SPARQL or q(x) :- ...>    set the current query (step 2)
  run [sat|ucq|scq|gcov|datalog]   answer it (default: every strategy)
  cover <spec e.g. "1,3;2">        answer through a user-chosen cover
  explain                          reformulation sizes, GCov space, plans (step 3)
  profile <name>                   complete | hierarchies-only | subclass-only | none
  minimize on|off                  containment-based disjunct pruning
  cache on|off|stats               answering caches (reformulation, cover, results)
  add <N-Triples statement>        modify the graph (step 4)
  remove <N-Triples statement>     modify the graph (step 4)
  saturate                         materialize and show G∞ statistics
  help                             this text
  quit                             leave
|}

let require_session st k =
  match st.session with
  | Some session -> k session
  | None -> print_endline "no dataset loaded — use `generate` or `load` first"

let set_store st store =
  match Session.of_store store with
  | Ok session -> st.session <- Some session
  | Error m -> print_endline m

let require_query st k =
  match st.query with
  | Some q -> k q
  | None -> print_endline "no query set — use `query ...` first"

let print_report st session r =
  Fmt.pr "%a@." Answer.pp_report r;
  let rows = Session.decode session r.Answer.answers in
  let shown = List.filteri (fun i _ -> i < 10) rows in
  List.iter
    (fun row ->
      Fmt.pr "  %a@."
        (Fmt.list ~sep:(Fmt.any " | ") (Namespace.pp_term st.ns))
        row)
    shown;
  if List.length rows > 10 then
    Fmt.pr "  ... (%d more)@." (List.length rows - 10)

let run_strategy st session q s =
  match Session.answer ~config:(config st) session q s with
  | Ok r -> print_report st session r
  | Error f ->
    Fmt.pr "%s: FAILED after %.3fs: %s@."
      (Strategy.name f.Answer.f_strategy)
      f.Answer.f_reformulation_s f.Answer.reason

let handle st line =
  let line = String.trim line in
  let cmd, arg =
    match String.index_opt line ' ' with
    | Some i ->
      ( String.sub line 0 i,
        String.trim (String.sub line (i + 1) (String.length line - i - 1)) )
    | None -> (line, "")
  in
  match String.lowercase_ascii cmd with
  | "" -> ()
  | "help" -> help ()
  | "generate" -> (
    match String.split_on_char ' ' arg with
    | [ workload; scale ] -> (
      let scale = int_of_string_opt scale in
      match workload, scale with
      | _, None -> print_endline "usage: generate lubm|dblp|geo <scale>"
      | "lubm", Some scale ->
        set_store st (Refq_workload.Lubm.generate ~scale ());
        Fmt.pr "generated LUBM(%d)@." scale
      | "dblp", Some scale ->
        set_store st (Refq_workload.Dblp.generate ~scale ());
        Fmt.pr "generated DBLP(%d)@." scale
      | "geo", Some scale ->
        set_store st (Refq_workload.Geo.generate ~scale ());
        Fmt.pr "generated GEO(%d)@." scale
      | other, _ -> Fmt.pr "unknown workload %S@." other)
    | _ -> print_endline "usage: generate lubm|dblp|geo <scale>")
  | "load" -> (
    let result =
      if Filename.check_suffix arg ".ttl" then
        Result.map_error
          (fun e -> Fmt.str "%a" Turtle.pp_error e)
          (Turtle.parse_file ~env:st.ns arg)
      else
        Result.map_error
          (fun e -> Fmt.str "%a" Ntriples.pp_error e)
          (Ntriples.parse_file arg)
    in
    match result with
    | Ok g ->
      set_store st (Store.of_graph g);
      Fmt.pr "loaded %d triples@." (Graph.cardinal g)
    | Error m -> print_endline m)
  | "stats" ->
    require_session st (fun session ->
        let store = Session.store session in
        Fmt.pr "%a@." (Stats.pp (Store.dictionary store)) (Stats.compute store))
  | "query" -> (
    let parse =
      if String.length arg > 1 && arg.[0] = 'q' && String.contains arg '-' then
        Sparql.parse_notation ~env:st.ns
      else Sparql.parse ~env:st.ns
    in
    match parse arg with
    | Ok q ->
      st.query <- Some q;
      Fmt.pr "query set: %a@." Cq.pp q
    | Error e -> Fmt.pr "query: %a@." Sparql.pp_error e)
  | "run" ->
    require_session st (fun session ->
        require_query st (fun q ->
            match arg with
            | "" -> List.iter (run_strategy st session q) Strategy.all_fixed
            | name -> (
              match Strategy.of_string name with
              | Ok s -> run_strategy st session q s
              | Error m -> print_endline m)))
  | "cover" ->
    require_session st (fun session ->
        require_query st (fun q ->
            let n_atoms = List.length q.Cq.body in
            try
              let fragments =
                String.split_on_char ';' arg
                |> List.map (fun frag ->
                       String.split_on_char ',' frag
                       |> List.map (fun s -> int_of_string (String.trim s) - 1))
              in
              let cover = Cover.make ~n_atoms fragments in
              run_strategy st session q (Strategy.Jucq cover)
            with Invalid_argument m | Failure m -> print_endline m))
  | "explain" ->
    require_session st (fun session ->
        require_query st (fun q ->
            let env = Session.env session in
            let cl = Answer.closure env in
            Fmt.pr "UCQ reformulation size: %d disjuncts@."
              (Refq_reform.Reformulate.count_disjuncts ~profile:st.profile cl q);
            let trace =
              Gcov.search ~config:(config st) (Answer.card_env env) cl q
            in
            Fmt.pr "GCov explored %d covers in %d rounds:@."
              (List.length trace.Gcov.explored)
              trace.Gcov.iterations;
            List.iter
              (fun s ->
                Fmt.pr "  %s %-40s cost %12.0f@."
                  (if s.Gcov.accepted then "*" else " ")
                  (Fmt.str "%a" Cover.pp s.Gcov.cover)
                  s.Gcov.estimate.Refq_cost.Cost_model.cost)
              trace.Gcov.explored;
            match
              Refq_reform.Reformulate.cover_to_jucq ~profile:st.profile cl q
                trace.Gcov.chosen
            with
            | jucq ->
              Fmt.pr "@.fragment plan:@.%a@." Refq_cost.Plan.pp_jucq_plan
                (Refq_cost.Plan.explain_jucq (Answer.card_env env) jucq)
            | exception Refq_reform.Reformulate.Too_large _ -> ()))
  | "profile" -> (
    match
      List.find_opt
        (fun p -> p.Refq_reform.Profiles.name = arg)
        Refq_reform.Profiles.all
    with
    | Some p ->
      st.profile <- p;
      Fmt.pr "profile: %s@." p.Refq_reform.Profiles.name
    | None ->
      Fmt.pr "unknown profile %S (try: %s)@." arg
        (String.concat ", "
           (List.map
              (fun p -> p.Refq_reform.Profiles.name)
              Refq_reform.Profiles.all)))
  | "minimize" -> (
    match arg with
    | "on" ->
      st.minimize <- true;
      print_endline "minimization on"
    | "off" ->
      st.minimize <- false;
      print_endline "minimization off"
    | _ -> print_endline "usage: minimize on|off")
  | "cache" -> (
    match arg with
    | "on" ->
      st.use_cache <- true;
      print_endline "caching on"
    | "off" ->
      st.use_cache <- false;
      print_endline "caching off"
    | "stats" ->
      require_session st (fun session ->
          let data, schema = Session.epochs session in
          Fmt.pr "epochs: data=%d schema=%d@." data schema;
          List.iter
            (fun s -> Fmt.pr "%a@." Answer.Cache.pp_stats s)
            (Session.cache_stats session))
    | _ -> print_endline "usage: cache on|off|stats")
  | "add" | "remove" ->
    require_session st (fun session ->
        let apply t =
          let mut = if cmd = "add" then `Add t else `Remove t in
          ignore (Session.apply session [ mut ]);
          Fmt.pr "%s %a@." cmd Triple.pp t
        in
        match Ntriples.parse_triples (arg ^ " .") with
        | Error _ | Ok [] -> (
          (* Accept both with and without the trailing dot. *)
          match Ntriples.parse_triples arg with
          | Ok [ t ] -> apply t
          | Ok _ | Error _ ->
            print_endline "could not parse the statement (N-Triples syntax)")
        | Ok [ t ] -> apply t
        | Ok _ -> print_endline "one statement at a time")
  | "saturate" ->
    require_session st (fun session ->
        let _, info = Answer.saturated (Session.env session) in
        Fmt.pr "G∞: %d → %d triples, %d round(s)@."
          info.Refq_saturation.Saturate.input_triples
          info.Refq_saturation.Saturate.output_triples
          info.Refq_saturation.Saturate.rounds)
  | "quit" | "exit" -> raise Exit
  | other -> Fmt.pr "unknown command %S — try `help`@." other

let main () =
  let ns =
    List.fold_left
      (fun env (prefix, uri) -> Namespace.add env ~prefix ~uri)
      Namespace.default
      [
        ("ub", Refq_workload.Lubm.ns);
        ("dblp", Refq_workload.Dblp.ns);
        ("geo", Refq_workload.Geo.ns);
        ("ex", "http://example.org/");
      ]
  in
  let st =
    {
      session = None;
      query = None;
      profile = Refq_reform.Profiles.complete;
      minimize = false;
      use_cache = true;
      ns;
    }
  in
  let interactive = Unix.isatty Unix.stdin in
  if interactive then begin
    print_endline "refq demo — reformulation-based query answering in RDF";
    print_endline "type `help` for commands";
  end;
  try
    while true do
      if interactive then print_string "demo> ";
      match In_channel.input_line stdin with
      | Some line -> (try handle st line with Exit -> raise Exit)
      | None -> raise Exit
    done
  with Exit -> if interactive then print_endline "bye"
